(* The unified execution core. The rounds branch descends from the
   lock-step executor and the step branch fuses the policy-driven and
   scripted delivery loops; both keep their ancestors' instruction-level
   behavior (event order, counter order, flow ids, error strings) so
   callers see byte-identical traces and metrics.

   Storage is flat: rounds traffic moves through growable (src, msg)
   buffers and step traffic through {!Envelope_pool}, so enqueue,
   delivery and fast-forward are O(1) amortized in the number of pending
   messages. [run_reference] keeps the original list-based semantics as
   an executable specification; the test suite checks the two engines
   byte-identical across protocols, schedulers and fault models. *)

type stopped = [ `Quiescent | `Limit | `Branch of int ]

(* Topology filtering. A send on an absent edge is silently filtered:
   counted as sent and dropped, but invisible to the adversary, the
   delay model and the tracer — so a fault on a non-edge is a no-op,
   schedulers only ever see envelopes on real edges, and the complete
   graph (or no topology at all, the default) takes the exact
   pre-topology code path. Self-sends are always allowed. [normalize]
   maps the complete graph to [None] so the filter costs one branch per
   message when it cannot fire. *)

let normalize_topology = function
  | Some t when not (Topology.is_complete t) -> Some t
  | _ -> None

let blocked_edge topo ~src ~dst =
  match topo with
  | None -> false
  | Some t -> dst <> src && not (Topology.adjacent t src dst)
type 'm pending = { sent : int; src : int; dst : int; msg : 'm }

type ('s, 'm) outcome = {
  states : 's array;
  trace : Trace.t;
  stopped : stopped;
  pending : 'm pending list;
}

(* ---------- synchronous lock-step rounds ---------- *)

(* Growable (src, msg) arrival buffer: one per destination, reused
   across rounds. Arrival order is append order, which matches the
   reference's [List.rev] of its cons-built inbox. *)
type 'm buf = {
  mutable b_src : int array;
  mutable b_msg : 'm option array;
  mutable b_len : int;
}

let buf_make () = { b_src = [||]; b_msg = [||]; b_len = 0 }

let buf_push b src m =
  if b.b_len = Array.length b.b_src then begin
    let cap = max 8 (2 * b.b_len) in
    let s' = Array.make cap 0 and m' = Array.make cap None in
    Array.blit b.b_src 0 s' 0 b.b_len;
    Array.blit b.b_msg 0 m' 0 b.b_len;
    b.b_src <- s';
    b.b_msg <- m'
  end;
  b.b_src.(b.b_len) <- src;
  b.b_msg.(b.b_len) <- Some m;
  b.b_len <- b.b_len + 1

(* Consume the buffer into an (src, msg) list in arrival order. Without
   fault-model delays every arrival in a round is appended in ascending
   source order (the sender loop runs src = 0..n-1), so arrival order is
   already the reference's stable-sort-by-source order. *)
let buf_consume b =
  let acc = ref [] in
  for i = b.b_len - 1 downto 0 do
    acc := (b.b_src.(i), Option.get b.b_msg.(i)) :: !acc;
    b.b_msg.(i) <- None
  done;
  b.b_len <- 0;
  !acc

(* With delays a destination's buffer mixes arrivals from several send
   rounds, so sort stably by source with a counting sort: [cnt] (length
   n, all-zero on entry and exit) and the scratch output arrays are
   shared across destinations. Stability makes this bit-for-bit the
   reference's [List.stable_sort] by source. *)
let buf_consume_sorted ~n ~cnt ~out b =
  if b.b_len <= 1 then buf_consume b
  else begin
    let len = b.b_len in
    for i = 0 to len - 1 do
      let s = b.b_src.(i) in
      cnt.(s) <- cnt.(s) + 1
    done;
    let run = ref 0 in
    for s = 0 to n - 1 do
      let c = cnt.(s) in
      cnt.(s) <- !run;
      run := !run + c
    done;
    let o_src, o_msg =
      if Array.length (fst !out) >= len then !out
      else begin
        let fresh = (Array.make len 0, Array.make len None) in
        out := fresh;
        fresh
      end
    in
    for i = 0 to len - 1 do
      let s = b.b_src.(i) in
      let p = cnt.(s) in
      cnt.(s) <- p + 1;
      o_src.(p) <- s;
      o_msg.(p) <- b.b_msg.(i);
      b.b_msg.(i) <- None
    done;
    Array.fill cnt 0 n 0;
    b.b_len <- 0;
    let acc = ref [] in
    for i = len - 1 downto 0 do
      acc := (o_src.(i), Option.get o_msg.(i)) :: !acc;
      o_msg.(i) <- None
    done;
    !acc
  end

let run_rounds ~topo ~faults ~obs_prefix ~err ~states ~n ~protocol ~rounds =
  let { Fault.faulty; adversary; delay_of } = faults in
  let is_faulty = Array.make n false in
  List.iter (fun p -> is_faulty.(p) <- true) faulty;
  let any_faulty = Array.exists Fun.id is_faulty in
  let trace = Trace.create () in
  (* hoisted: the tracing checks below cost one branch per site when no
     buffer is installed on this domain *)
  let tr = Obs.Tracer.active () in
  let flow_ids = ref 0 in
  let check_dsts msgs =
    List.iter
      (fun (dst, _) ->
        if dst < 0 || dst >= n then
          invalid_arg (err ^ ": destination out of range"))
      msgs
  in
  (* sends returned by [on_receive] join the next round's outbox;
     [on_start] seeds round 0's *)
  let carry =
    Array.map (fun st -> protocol.Protocol.on_start st) states
  in
  (* delayed-delivery buffers, allocated only when the fault model
     delays channels: [future.(r).(dst)] holds round-[r] arrivals *)
  let future =
    match delay_of with
    | None -> [||]
    | Some _ -> Array.init rounds (fun _ -> Array.init n (fun _ -> buf_make ()))
  in
  (* without delays the same n buffers are drained and refilled each
     round *)
  let now_inboxes =
    match delay_of with
    | None -> Array.init n (fun _ -> buf_make ())
    | Some _ -> [||]
  in
  (* counting-sort scratch, shared across destinations *)
  let cnt = match delay_of with None -> [||] | Some _ -> Array.make n 0 in
  let out = ref ([||], [||]) in
  (* per-destination buckets of a faulty source's outbox, filled once
     per source instead of filtering the whole outbox once per edge *)
  let fbuckets =
    if any_faulty then Array.init n (fun _ -> buf_make ()) else [||]
  in
  let edge_k : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  for round = 0 to rounds - 1 do
    trace.Trace.rounds <- trace.Trace.rounds + 1;
    if tr then begin
      Obs.Tracer.set_now round;
      Obs.Tracer.emit ~lclock:round Obs.Tracer.Begin "round"
        [ ("round", Obs.Tracer.Int round) ]
    end;
    (* Gather honest outboxes. *)
    let outbox =
      Array.init n (fun src ->
          let msgs =
            match carry.(src) with
            | [] -> protocol.Protocol.on_tick states.(src) ~time:round
            | pending ->
                pending @ protocol.Protocol.on_tick states.(src) ~time:round
          in
          check_dsts msgs;
          msgs)
    in
    let inboxes =
      match delay_of with None -> now_inboxes | Some _ -> future.(round)
    in
    (* [route] is the post-adversary channel: immediate delivery, or a
       push into the arrival buffer when the fault model delays it. *)
    let route ~src ~dst m =
      match delay_of with
      | None ->
          trace.Trace.messages_delivered <- trace.Trace.messages_delivered + 1;
          buf_push inboxes.(dst) src m
      | Some df ->
          let key = (src lsl 20) lor dst in
          let k =
            match Hashtbl.find_opt edge_k key with
            | Some r -> r
            | None ->
                let r = ref 0 in
                Hashtbl.add edge_k key r;
                r
          in
          let d = df ~src ~dst ~k:!k in
          incr k;
          let arrive = round + max 0 d in
          if arrive >= rounds then
            (* would arrive past the horizon: the channel ate it *)
            trace.Trace.messages_dropped <- trace.Trace.messages_dropped + 1
          else begin
            trace.Trace.messages_delivered <-
              trace.Trace.messages_delivered + 1;
            buf_push future.(arrive).(dst) src m
          end
    in
    (* Apply the adversary on faulty sources, edge by edge. *)
    for src = 0 to n - 1 do
      if is_faulty.(src) then begin
        (* bucket the outbox by destination once: O(|outbox| + n)
           instead of the reference's O(n * |outbox|) filter per edge *)
        List.iter (fun (d, m) -> buf_push fbuckets.(d) src m) outbox.(src);
        for dst = 0 to n - 1 do
          let bucket = fbuckets.(dst) in
          if blocked_edge topo ~src ~dst then begin
            (* the topology eats the whole edge before the adversary:
               no fabrication, no corruption — a fault on a non-edge is
               a no-op *)
            trace.Trace.messages_sent <-
              trace.Trace.messages_sent + bucket.b_len;
            trace.Trace.messages_dropped <-
              trace.Trace.messages_dropped + bucket.b_len;
            for i = 0 to bucket.b_len - 1 do
              bucket.b_msg.(i) <- None
            done;
            bucket.b_len <- 0
          end
          else begin
          (* The adversary sees each honest message on this edge (or None
             when there is none) and answers with what actually flows. *)
          let adv_instant name =
            if tr then
              Obs.Tracer.instant ~track:src ~lclock:round ("adv." ^ name)
                [ ("dst", Obs.Tracer.Int dst) ]
          in
          let consider honest_msg =
            trace.Trace.messages_sent <- trace.Trace.messages_sent + 1;
            match adversary ~round ~src ~dst honest_msg with
            | None ->
                adv_instant "drop";
                trace.Trace.messages_dropped <-
                  trace.Trace.messages_dropped + 1
            | Some m ->
                (match honest_msg with
                | Some h when h != m ->
                    adv_instant "corrupt";
                    trace.Trace.messages_corrupted <-
                      trace.Trace.messages_corrupted + 1
                | _ -> ());
                route ~src ~dst m
          in
          if bucket.b_len = 0 then begin
            (* allow fabrication on a quiet edge *)
            match adversary ~round ~src ~dst None with
            | None -> ()
            | Some m ->
                adv_instant "fabricate";
                trace.Trace.messages_sent <- trace.Trace.messages_sent + 1;
                trace.Trace.messages_corrupted <-
                  trace.Trace.messages_corrupted + 1;
                route ~src ~dst m
          end
          else begin
            for i = 0 to bucket.b_len - 1 do
              consider (Some (Option.get bucket.b_msg.(i)));
              bucket.b_msg.(i) <- None
            done;
            bucket.b_len <- 0
          end
          end
        done
      end
      else
        List.iter
          (fun (dst, m) ->
            trace.Trace.messages_sent <- trace.Trace.messages_sent + 1;
            if blocked_edge topo ~src ~dst then
              trace.Trace.messages_dropped <-
                trace.Trace.messages_dropped + 1
            else route ~src ~dst m)
          outbox.(src)
    done;
    (* Deliver, sorted by source for determinism. *)
    for dst = 0 to n - 1 do
      let batch =
        match delay_of with
        | None -> buf_consume inboxes.(dst)
        | Some _ -> buf_consume_sorted ~n ~cnt ~out inboxes.(dst)
      in
      if tr then begin
        Obs.Tracer.emit ~track:dst ~lclock:round Obs.Tracer.Begin "recv"
          [ ("msgs", Obs.Tracer.Int (List.length batch)) ];
        (* a synchronous round delivers in the round it sends, so the
           flow pair is emitted at delivery: the arrow still runs
           src -> dst across tracks *)
        List.iter
          (fun (src, _) ->
            let id = !flow_ids in
            incr flow_ids;
            Obs.Tracer.flow_start ~track:src ~lclock:round ~id "msg";
            Obs.Tracer.flow_end ~track:dst ~lclock:round ~id "msg")
          batch
      end;
      carry.(dst) <- protocol.Protocol.on_receive states.(dst) ~time:round batch;
      if tr then
        Obs.Tracer.emit ~track:dst ~lclock:round Obs.Tracer.End "recv" []
    done;
    if tr then Obs.Tracer.emit ~lclock:round Obs.Tracer.End "round" []
  done;
  Option.iter (fun prefix -> Trace.publish ~prefix trace) obs_prefix;
  { states; trace; stopped = `Limit; pending = [] }

(* ---------- one-message-at-a-time delivery steps ---------- *)

let run_steps ~topo ~faults ~record ~summarize ~obs_prefix ~deliver_msg_args
    ~corrupt_instants ~err ~states ~n ~protocol ~scheduler ~limit =
  let { Fault.faulty; adversary; delay_of } = faults in
  let is_faulty = Array.make n false in
  List.iter (fun p -> is_faulty.(p) <- true) faulty;
  (match (scheduler, delay_of) with
  | Scheduler.Scripted _, Some _ ->
      invalid_arg (err ^ ": delay faults need a non-scripted scheduler")
  | _ -> ());
  let trace = Trace.create () in
  let delays = delay_of <> None in
  (* Scripted keeps the dense swap-with-last pool (decision indices
     address [0, live)); every other scheduler gets the stable pool with
     the order structures it needs. *)
  let pool =
    match scheduler with
    | Scheduler.Scripted _ -> Envelope_pool.dense ()
    | Scheduler.Random _ -> Envelope_pool.stable ~delays ~random:true ()
    | Scheduler.Delayed _ -> Envelope_pool.stable ~delays ~classes:true ()
    | _ -> Envelope_pool.stable ~delays ()
  in
  let is_victim =
    match scheduler with
    | Scheduler.Delayed { victims; _ } ->
        let a = Array.make n false in
        List.iter (fun v -> if v >= 0 && v < n then a.(v) <- true) victims;
        fun src -> a.(src)
    | _ -> fun _ -> false
  in
  let rng =
    match scheduler with
    | Scheduler.Random seed -> Some (Rng.create seed)
    | _ -> None
  in
  let step = ref 0 in
  (* hoisted: one branch per site when no trace buffer is installed *)
  let tr = Obs.Tracer.active () in
  let edge_k : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let ready_at ~src ~dst =
    match delay_of with
    | None -> !step
    | Some df ->
        let key = (src lsl 20) lor dst in
        let k =
          match Hashtbl.find_opt edge_k key with
          | Some r -> r
          | None ->
              let r = ref 0 in
              Hashtbl.add edge_k key r;
              r
        in
        let d = df ~src ~dst ~k:!k in
        incr k;
        !step + max 0 d
  in
  let enqueue ~src msgs =
    List.iter
      (fun (dst, m) ->
        if dst < 0 || dst >= n then
          invalid_arg (err ^ ": destination out of range");
        trace.Trace.messages_sent <- trace.Trace.messages_sent + 1;
        if blocked_edge topo ~src ~dst then
          trace.Trace.messages_dropped <- trace.Trace.messages_dropped + 1
        else
        let filtered =
          if is_faulty.(src) then adversary ~round:!step ~src ~dst (Some m)
          else Some m
        in
        match filtered with
        | None ->
            if tr then
              Obs.Tracer.instant ~track:src ~lclock:!step "adv.drop"
                [ ("dst", Obs.Tracer.Int dst) ];
            trace.Trace.messages_dropped <- trace.Trace.messages_dropped + 1
        | Some m' ->
            if is_faulty.(src) && m' != m then begin
              if corrupt_instants && tr then
                Obs.Tracer.instant ~track:src ~lclock:!step "adv.corrupt"
                  [ ("dst", Obs.Tracer.Int dst) ];
              trace.Trace.messages_corrupted <-
                trace.Trace.messages_corrupted + 1
            end;
            (* the pool's send sequence number doubles as the flow id *)
            if tr then
              Obs.Tracer.flow_start ~track:src ~lclock:!step
                ~id:(Envelope_pool.next_seq pool) "msg";
            Envelope_pool.push pool ~now:!step ~victim:(is_victim src) ~src
              ~dst ~born:!step
              ~ready:(ready_at ~src ~dst)
              m')
      msgs
  in
  Array.iteri
    (fun src st -> enqueue ~src (protocol.Protocol.on_start st))
    states;
  (* Next delivery under the scheduler; [`None] only when every pending
     message is still in flight (delay faults). In a stable pool seq
     order is exactly the legacy slot order, so "first eligible in slot
     order" becomes "smallest eligible seq" and so on. *)
  let pick () =
    match scheduler with
    | Scheduler.Rounds -> assert false
    | Scheduler.Fifo ->
        if delays then begin
          Envelope_pool.mature pool ~now:!step;
          match Envelope_pool.first_eligible pool with
          | -1 -> `None
          | s -> `Seq s
        end
        else `Seq (Envelope_pool.first_live pool)
    | Scheduler.Random _ ->
        let rng = Option.get rng in
        if delays then begin
          Envelope_pool.mature pool ~now:!step;
          let elig = Envelope_pool.eligible_count pool in
          if elig = 0 then `None
          else
            (* choose uniformly among eligible entries *)
            `Seq (Envelope_pool.kth_eligible pool (Rng.int rng elig))
        end
        else
          (* choose uniformly among live (all eligible) entries *)
          `Seq
            (Envelope_pool.kth_live pool
               (Rng.int rng (Envelope_pool.live pool)))
    | Scheduler.Delayed { slack; _ } -> (
        (* oldest non-victim message if any; otherwise a victim message
           old enough; otherwise the oldest victim message *)
        let normal, victim =
          if delays then begin
            Envelope_pool.mature pool ~now:!step;
            ( Envelope_pool.first_eligible_class pool ~victim:false,
              Envelope_pool.first_eligible_class pool ~victim:true )
          end
          else
            ( Envelope_pool.first_live_class pool ~victim:false,
              Envelope_pool.first_live_class pool ~victim:true )
        in
        match (normal, victim) with
        | -1, -1 -> `None
        | s, -1 -> `Seq s
        | -1, s -> `Seq s
        | s, sv ->
            if !step - Envelope_pool.born_of pool sv >= slack then `Seq sv
            else `Seq s)
    | Scheduler.Scripted { decide; fallback_fifo } -> (
        let live = Envelope_pool.live pool in
        match decide ~live ~step:!step with
        | Some d -> `Pos (Scheduler.wrap ~decision:d ~live)
        | None ->
            if fallback_fifo then
              (* oldest pending entry in global send order *)
              `Pos (Envelope_pool.oldest_pos pool)
            else `Branch live)
  in
  (* hoisted so the per-delivery pool-occupancy observation costs
     nothing when metrics are off *)
  let obs_pool =
    match obs_prefix with
    | Some p when Obs.enabled () -> Some (p ^ ".pool")
    | _ -> None
  in
  let deliver target =
    (match obs_pool with
    | Some name -> Obs.observe name (Envelope_pool.live pool)
    | None -> ());
    let seq, src, dst, msg =
      match target with
      | `Seq s ->
          let src, dst, m = Envelope_pool.remove_seq pool s in
          (s, src, dst, m)
      | `Pos i -> Envelope_pool.remove_at pool i
    in
    (match record with
    | None -> ()
    | Some f ->
        let info = match summarize with None -> "" | Some s -> s msg in
        f { Trace.step = !step; src; dst; info });
    let lclock = !step in
    if tr then begin
      Obs.Tracer.set_now lclock;
      let args =
        ("src", Obs.Tracer.Int src)
        ::
        (if deliver_msg_args then
           match summarize with
           | None -> []
           | Some s -> [ ("msg", Obs.Tracer.Str (s msg)) ]
         else [])
      in
      Obs.Tracer.emit ~track:dst ~lclock Obs.Tracer.Begin "deliver" args;
      Obs.Tracer.flow_end ~track:dst ~lclock ~id:seq "msg"
    end;
    incr step;
    trace.Trace.steps <- trace.Trace.steps + 1;
    trace.Trace.messages_delivered <- trace.Trace.messages_delivered + 1;
    let reactions =
      protocol.Protocol.on_receive states.(dst) ~time:lclock [ (src, msg) ]
    in
    enqueue ~src:dst reactions;
    if tr then
      Obs.Tracer.emit ~track:dst ~lclock Obs.Tracer.End "deliver" []
  in
  let stopped = ref `Limit in
  (try
     while true do
       if !step >= limit then begin
         stopped := `Limit;
         raise Exit
       end;
       if Envelope_pool.live pool = 0 then begin
         stopped := `Quiescent;
         raise Exit
       end;
       match pick () with
       | `Seq _ as t -> deliver t
       | `Pos _ as t -> deliver t
       | `Branch w ->
           stopped := `Branch w;
           raise Exit
       | `None ->
           (* every pending message is still in flight: skip ahead to
              the earliest arrival (delays stay fair, never deadlock) *)
           deliver (`Seq (Envelope_pool.min_ready_pop pool))
     done
   with Exit -> ());
  Option.iter
    (fun prefix ->
      Trace.publish ~prefix trace;
      if Obs.enabled () then begin
        Obs.observe (prefix ^ ".steps_per_run") trace.Trace.steps;
        Obs.record_max "engine.pool_capacity" (Envelope_pool.capacity pool);
        Obs.record_max "engine.pool_occupancy" (Envelope_pool.max_live pool)
      end)
    obs_prefix;
  (* Undelivered messages in slot order. Under a dense (Scripted) pool
     the live entries occupy slots [0, live), so list position i is
     exactly the message a decision of i would deliver next — the
     enabled-set view {!Explore.check} branches on. *)
  let pending =
    List.rev
      (Envelope_pool.fold_pending pool
         (fun acc ~seq ~src ~dst msg ->
           { sent = seq; src; dst; msg } :: acc)
         [])
  in
  { states; trace; stopped = !stopped; pending }

let run ?topology ?(faults = Fault.none) ?record ?summarize ?obs_prefix
    ?(deliver_msg_args = false) ?(corrupt_instants = true)
    ?(err = "Engine.run") ?states ~n ~protocol ~scheduler ~limit () =
  List.iter
    (fun p ->
      if p < 0 || p >= n then invalid_arg (err ^ ": faulty id out of range"))
    faults.Fault.faulty;
  (match topology with
  | Some t when Topology.n t <> n ->
      invalid_arg
        (Printf.sprintf "%s: topology is over %d processes, engine runs %d"
           err (Topology.n t) n)
  | _ -> ());
  let topo = normalize_topology topology in
  let states =
    match states with
    | Some s ->
        if Array.length s <> n then invalid_arg (err ^ ": need n states");
        s
    | None -> Array.init n (fun me -> protocol.Protocol.init ~me)
  in
  match scheduler with
  | Scheduler.Rounds ->
      run_rounds ~topo ~faults ~obs_prefix ~err ~states ~n ~protocol
        ~rounds:limit
  | _ ->
      run_steps ~topo ~faults ~record ~summarize ~obs_prefix
        ~deliver_msg_args ~corrupt_instants ~err ~states ~n ~protocol
        ~scheduler ~limit

(* ---------- list-based reference implementation ---------- *)

(* The pre-pool semantics, kept as an executable specification: pending
   messages live in a plain list in send order, every scheduler question
   is a linear scan, and the Scripted pool's swap-with-last discipline
   is replayed on the list. O(pending) per operation — test-sized
   instances only. *)

let reference_rounds ~topo ~faults ~obs_prefix ~err ~states ~n ~protocol
    ~rounds =
  let { Fault.faulty; adversary; delay_of } = faults in
  let is_faulty = Array.make n false in
  List.iter (fun p -> is_faulty.(p) <- true) faulty;
  let trace = Trace.create () in
  let tr = Obs.Tracer.active () in
  let flow_ids = ref 0 in
  let check_dsts msgs =
    List.iter
      (fun (dst, _) ->
        if dst < 0 || dst >= n then
          invalid_arg (err ^ ": destination out of range"))
      msgs
  in
  let carry =
    Array.map (fun st -> protocol.Protocol.on_start st) states
  in
  let future =
    match delay_of with
    | None -> [||]
    | Some _ -> Array.init rounds (fun _ -> Array.make n [])
  in
  let edge_k : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  for round = 0 to rounds - 1 do
    trace.Trace.rounds <- trace.Trace.rounds + 1;
    if tr then begin
      Obs.Tracer.set_now round;
      Obs.Tracer.emit ~lclock:round Obs.Tracer.Begin "round"
        [ ("round", Obs.Tracer.Int round) ]
    end;
    let outbox =
      Array.init n (fun src ->
          let msgs =
            match carry.(src) with
            | [] -> protocol.Protocol.on_tick states.(src) ~time:round
            | pending ->
                pending @ protocol.Protocol.on_tick states.(src) ~time:round
          in
          check_dsts msgs;
          msgs)
    in
    let inboxes =
      match delay_of with None -> Array.make n [] | Some _ -> future.(round)
    in
    let route ~src ~dst m =
      match delay_of with
      | None ->
          trace.Trace.messages_delivered <- trace.Trace.messages_delivered + 1;
          inboxes.(dst) <- (src, m) :: inboxes.(dst)
      | Some df ->
          let key = (src lsl 20) lor dst in
          let k =
            match Hashtbl.find_opt edge_k key with
            | Some r -> r
            | None ->
                let r = ref 0 in
                Hashtbl.add edge_k key r;
                r
          in
          let d = df ~src ~dst ~k:!k in
          incr k;
          let arrive = round + max 0 d in
          if arrive >= rounds then
            trace.Trace.messages_dropped <- trace.Trace.messages_dropped + 1
          else begin
            trace.Trace.messages_delivered <-
              trace.Trace.messages_delivered + 1;
            future.(arrive).(dst) <- (src, m) :: future.(arrive).(dst)
          end
    in
    for src = 0 to n - 1 do
      if is_faulty.(src) then
        for dst = 0 to n - 1 do
          let honest_msgs =
            List.filter_map
              (fun (d, m) -> if d = dst then Some m else None)
              outbox.(src)
          in
          if blocked_edge topo ~src ~dst then
            List.iter
              (fun _ ->
                trace.Trace.messages_sent <- trace.Trace.messages_sent + 1;
                trace.Trace.messages_dropped <-
                  trace.Trace.messages_dropped + 1)
              honest_msgs
          else begin
          let adv_instant name =
            if tr then
              Obs.Tracer.instant ~track:src ~lclock:round ("adv." ^ name)
                [ ("dst", Obs.Tracer.Int dst) ]
          in
          let consider honest_msg =
            trace.Trace.messages_sent <- trace.Trace.messages_sent + 1;
            match adversary ~round ~src ~dst honest_msg with
            | None ->
                adv_instant "drop";
                trace.Trace.messages_dropped <-
                  trace.Trace.messages_dropped + 1
            | Some m ->
                (match honest_msg with
                | Some h when h != m ->
                    adv_instant "corrupt";
                    trace.Trace.messages_corrupted <-
                      trace.Trace.messages_corrupted + 1
                | _ -> ());
                route ~src ~dst m
          in
          (match honest_msgs with
          | [] -> (
              match adversary ~round ~src ~dst None with
              | None -> ()
              | Some m ->
                  adv_instant "fabricate";
                  trace.Trace.messages_sent <- trace.Trace.messages_sent + 1;
                  trace.Trace.messages_corrupted <-
                    trace.Trace.messages_corrupted + 1;
                  route ~src ~dst m)
          | msgs -> List.iter (fun m -> consider (Some m)) msgs)
          end
        done
      else
        List.iter
          (fun (dst, m) ->
            trace.Trace.messages_sent <- trace.Trace.messages_sent + 1;
            if blocked_edge topo ~src ~dst then
              trace.Trace.messages_dropped <-
                trace.Trace.messages_dropped + 1
            else route ~src ~dst m)
          outbox.(src)
    done;
    for dst = 0 to n - 1 do
      let batch =
        List.stable_sort
          (fun (a, _) (b, _) -> compare a b)
          (List.rev inboxes.(dst))
      in
      if tr then begin
        Obs.Tracer.emit ~track:dst ~lclock:round Obs.Tracer.Begin "recv"
          [ ("msgs", Obs.Tracer.Int (List.length batch)) ];
        List.iter
          (fun (src, _) ->
            let id = !flow_ids in
            incr flow_ids;
            Obs.Tracer.flow_start ~track:src ~lclock:round ~id "msg";
            Obs.Tracer.flow_end ~track:dst ~lclock:round ~id "msg")
          batch
      end;
      carry.(dst) <- protocol.Protocol.on_receive states.(dst) ~time:round batch;
      if tr then
        Obs.Tracer.emit ~track:dst ~lclock:round Obs.Tracer.End "recv" []
    done;
    if tr then Obs.Tracer.emit ~lclock:round Obs.Tracer.End "round" []
  done;
  Option.iter (fun prefix -> Trace.publish ~prefix trace) obs_prefix;
  { states; trace; stopped = `Limit; pending = [] }

type 'm lentry = {
  l_seq : int;
  l_src : int;
  l_dst : int;
  l_msg : 'm;
  l_born : int;
  l_ready : int;
}

let reference_steps ~topo ~faults ~record ~summarize ~obs_prefix
    ~deliver_msg_args ~corrupt_instants ~err ~states ~n ~protocol ~scheduler
    ~limit =
  let { Fault.faulty; adversary; delay_of } = faults in
  let is_faulty = Array.make n false in
  List.iter (fun p -> is_faulty.(p) <- true) faulty;
  let dense =
    match scheduler with Scheduler.Scripted _ -> true | _ -> false
  in
  (match (scheduler, delay_of) with
  | Scheduler.Scripted _, Some _ ->
      invalid_arg (err ^ ": delay faults need a non-scripted scheduler")
  | _ -> ());
  let trace = Trace.create () in
  (* the pool, as a list in slot order *)
  let pending_q : 'm lentry list ref = ref [] in
  let next_seq = ref 0 in
  let live () = List.length !pending_q in
  let rng =
    match scheduler with
    | Scheduler.Random seed -> Some (Rng.create seed)
    | _ -> None
  in
  let step = ref 0 in
  let tr = Obs.Tracer.active () in
  let edge_k : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let ready_at ~src ~dst =
    match delay_of with
    | None -> !step
    | Some df ->
        let key = (src lsl 20) lor dst in
        let k =
          match Hashtbl.find_opt edge_k key with
          | Some r -> r
          | None ->
              let r = ref 0 in
              Hashtbl.add edge_k key r;
              r
        in
        let d = df ~src ~dst ~k:!k in
        incr k;
        !step + max 0 d
  in
  let enqueue ~src msgs =
    List.iter
      (fun (dst, m) ->
        if dst < 0 || dst >= n then
          invalid_arg (err ^ ": destination out of range");
        trace.Trace.messages_sent <- trace.Trace.messages_sent + 1;
        if blocked_edge topo ~src ~dst then
          trace.Trace.messages_dropped <- trace.Trace.messages_dropped + 1
        else
        let filtered =
          if is_faulty.(src) then adversary ~round:!step ~src ~dst (Some m)
          else Some m
        in
        match filtered with
        | None ->
            if tr then
              Obs.Tracer.instant ~track:src ~lclock:!step "adv.drop"
                [ ("dst", Obs.Tracer.Int dst) ];
            trace.Trace.messages_dropped <- trace.Trace.messages_dropped + 1
        | Some m' ->
            if is_faulty.(src) && m' != m then begin
              if corrupt_instants && tr then
                Obs.Tracer.instant ~track:src ~lclock:!step "adv.corrupt"
                  [ ("dst", Obs.Tracer.Int dst) ];
              trace.Trace.messages_corrupted <-
                trace.Trace.messages_corrupted + 1
            end;
            if tr then
              Obs.Tracer.flow_start ~track:src ~lclock:!step ~id:!next_seq
                "msg";
            pending_q :=
              !pending_q
              @ [
                  {
                    l_seq = !next_seq;
                    l_src = src;
                    l_dst = dst;
                    l_msg = m';
                    l_born = !step;
                    l_ready = ready_at ~src ~dst;
                  };
                ];
            incr next_seq)
      msgs
  in
  Array.iteri
    (fun src st -> enqueue ~src (protocol.Protocol.on_start st))
    states;
  let eligible e = e.l_ready <= !step in
  (* index (in current list order) of the i-th entry satisfying p *)
  let index_of ?(nth = 0) p =
    let rec go i seen = function
      | [] -> -1
      | e :: tl ->
          if p e then
            if seen = nth then i else go (i + 1) (seen + 1) tl
          else go (i + 1) seen tl
    in
    go 0 0 !pending_q
  in
  let pick () =
    match scheduler with
    | Scheduler.Rounds -> assert false
    | Scheduler.Fifo -> (
        match index_of eligible with -1 -> `None | i -> `Deliver i)
    | Scheduler.Random _ ->
        let rng = Option.get rng in
        let elig =
          match delay_of with
          | None -> live ()
          | Some _ ->
              List.fold_left
                (fun c e -> if eligible e then c + 1 else c)
                0 !pending_q
        in
        if elig = 0 then `None
        else `Deliver (index_of ~nth:(Rng.int rng elig) eligible)
    | Scheduler.Delayed { victims; slack } -> (
        let normal =
          index_of (fun e -> eligible e && not (List.mem e.l_src victims))
        in
        let victim =
          index_of (fun e -> eligible e && List.mem e.l_src victims)
        in
        match (normal, victim) with
        | -1, -1 -> `None
        | i, -1 -> `Deliver i
        | -1, j -> `Deliver j
        | i, j ->
            let ev = List.nth !pending_q j in
            if !step - ev.l_born >= slack then `Deliver j else `Deliver i)
    | Scheduler.Scripted { decide; fallback_fifo } -> (
        match decide ~live:(live ()) ~step:!step with
        | Some d -> `Deliver (Scheduler.wrap ~decision:d ~live:(live ()))
        | None ->
            if fallback_fifo then begin
              let best = ref 0 and best_seq = ref max_int and i = ref 0 in
              List.iter
                (fun e ->
                  if e.l_seq < !best_seq then begin
                    best := !i;
                    best_seq := e.l_seq
                  end;
                  incr i)
                !pending_q;
              `Deliver !best
            end
            else `Branch (live ()))
  in
  let min_ready_index () =
    let best = ref (-1) and best_key = ref (max_int, max_int) and i = ref 0 in
    List.iter
      (fun e ->
        let key = (e.l_ready, e.l_seq) in
        if !best < 0 || key < !best_key then begin
          best := !i;
          best_key := key
        end;
        incr i)
      !pending_q;
    !best
  in
  (* removal: stable pools leave list order untouched; the dense pool
     replays swap-with-last on the list *)
  let remove_at i =
    let arr = Array.of_list !pending_q in
    let e = arr.(i) in
    let last = Array.length arr - 1 in
    if dense then begin
      arr.(i) <- arr.(last);
      pending_q := Array.to_list (Array.sub arr 0 last)
    end
    else
      pending_q :=
        List.filteri (fun j _ -> j <> i) !pending_q;
    e
  in
  let obs_pool =
    match obs_prefix with
    | Some p when Obs.enabled () -> Some (p ^ ".pool")
    | _ -> None
  in
  let deliver i =
    (match obs_pool with
    | Some name -> Obs.observe name (live ())
    | None -> ());
    let e = remove_at i in
    (match record with
    | None -> ()
    | Some f ->
        let info = match summarize with None -> "" | Some s -> s e.l_msg in
        f { Trace.step = !step; src = e.l_src; dst = e.l_dst; info });
    let lclock = !step in
    if tr then begin
      Obs.Tracer.set_now lclock;
      let args =
        ("src", Obs.Tracer.Int e.l_src)
        ::
        (if deliver_msg_args then
           match summarize with
           | None -> []
           | Some s -> [ ("msg", Obs.Tracer.Str (s e.l_msg)) ]
         else [])
      in
      Obs.Tracer.emit ~track:e.l_dst ~lclock Obs.Tracer.Begin "deliver" args;
      Obs.Tracer.flow_end ~track:e.l_dst ~lclock ~id:e.l_seq "msg"
    end;
    incr step;
    trace.Trace.steps <- trace.Trace.steps + 1;
    trace.Trace.messages_delivered <- trace.Trace.messages_delivered + 1;
    let reactions =
      protocol.Protocol.on_receive states.(e.l_dst) ~time:lclock
        [ (e.l_src, e.l_msg) ]
    in
    enqueue ~src:e.l_dst reactions;
    if tr then
      Obs.Tracer.emit ~track:e.l_dst ~lclock Obs.Tracer.End "deliver" []
  in
  let stopped = ref `Limit in
  (try
     while true do
       if !step >= limit then begin
         stopped := `Limit;
         raise Exit
       end;
       if live () = 0 then begin
         stopped := `Quiescent;
         raise Exit
       end;
       match pick () with
       | `Deliver i -> deliver i
       | `Branch w ->
           stopped := `Branch w;
           raise Exit
       | `None -> deliver (min_ready_index ())
     done
   with Exit -> ());
  Option.iter
    (fun prefix ->
      Trace.publish ~prefix trace;
      if Obs.enabled () then
        Obs.observe (prefix ^ ".steps_per_run") trace.Trace.steps)
    obs_prefix;
  let pending =
    List.map
      (fun e -> { sent = e.l_seq; src = e.l_src; dst = e.l_dst; msg = e.l_msg })
      !pending_q
  in
  { states; trace; stopped = !stopped; pending }

let run_reference ?topology ?(faults = Fault.none) ?record ?summarize
    ?obs_prefix ?(deliver_msg_args = false) ?(corrupt_instants = true)
    ?(err = "Engine.run") ?states ~n ~protocol ~scheduler ~limit () =
  List.iter
    (fun p ->
      if p < 0 || p >= n then invalid_arg (err ^ ": faulty id out of range"))
    faults.Fault.faulty;
  (match topology with
  | Some t when Topology.n t <> n ->
      invalid_arg
        (Printf.sprintf "%s: topology is over %d processes, engine runs %d"
           err (Topology.n t) n)
  | _ -> ());
  let topo = normalize_topology topology in
  let states =
    match states with
    | Some s ->
        if Array.length s <> n then invalid_arg (err ^ ": need n states");
        s
    | None -> Array.init n (fun me -> protocol.Protocol.init ~me)
  in
  match scheduler with
  | Scheduler.Rounds ->
      reference_rounds ~topo ~faults ~obs_prefix ~err ~states ~n ~protocol
        ~rounds:limit
  | _ ->
      reference_steps ~topo ~faults ~record ~summarize ~obs_prefix
        ~deliver_msg_args ~corrupt_instants ~err ~states ~n ~protocol
        ~scheduler ~limit
