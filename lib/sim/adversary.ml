type 'msg t = round:int -> src:int -> dst:int -> 'msg option -> 'msg option

let honest ~round:_ ~src:_ ~dst:_ honest_msg = honest_msg
let silent ~round:_ ~src:_ ~dst:_ _ = None

let crash_at r ~round ~src:_ ~dst:_ honest_msg =
  if round < r then honest_msg else None

let corrupt f ~round ~src:_ ~dst honest_msg =
  Option.map (fun m -> f ~round ~dst m) honest_msg

let drop_to victims ~round:_ ~src:_ ~dst honest_msg =
  if List.mem dst victims then None else honest_msg

let equivocate f ~round:_ ~src:_ ~dst honest_msg =
  Option.map (fun m -> f ~dst m) honest_msg

let omit_prob ~seed prob =
  if not (prob >= 0. && prob <= 1.) then
    invalid_arg "Adversary.omit_prob: probability not in [0, 1]";
  let edges : (int, Rng.t) Hashtbl.t = Hashtbl.create 16 in
  fun ~round:_ ~src ~dst honest_msg ->
    match honest_msg with
    | None -> None
    | Some _ ->
        (* Edge key is collision-free for n < 2^20 processes; the rng
           advances once per message on the edge, so the k-th send's
           fate is a pure function of (seed, src, dst, k). *)
        let key = (src lsl 20) lor dst in
        let rng =
          match Hashtbl.find_opt edges key with
          | Some r -> r
          | None ->
              let r = Rng.stream ~root:seed key in
              Hashtbl.add edges key r;
              r
        in
        if Rng.float rng 1.0 < prob then None else honest_msg

let compose a b ~round ~src ~dst honest_msg =
  b ~round ~src ~dst (a ~round ~src ~dst honest_msg)
