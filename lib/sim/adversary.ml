type 'msg t = round:int -> src:int -> dst:int -> 'msg option -> 'msg option

let honest ~round:_ ~src:_ ~dst:_ honest_msg = honest_msg
let silent ~round:_ ~src:_ ~dst:_ _ = None

let crash_at r ~round ~src:_ ~dst:_ honest_msg =
  if round < r then honest_msg else None

let corrupt f ~round ~src:_ ~dst honest_msg =
  Option.map (fun m -> f ~round ~dst m) honest_msg

let drop_to victims ~round:_ ~src:_ ~dst honest_msg =
  if List.mem dst victims then None else honest_msg

let equivocate f ~round:_ ~src:_ ~dst honest_msg =
  Option.map (fun m -> f ~dst m) honest_msg

let compose a b ~round ~src ~dst honest_msg =
  b ~round ~src ~dst (a ~round ~src ~dst honest_msg)
