(** Pluggable delivery schedulers for the unified {!Engine}.

    A scheduler decides {e which} pending message the engine delivers
    next (and, for {!Rounds}, that delivery is batched per lock-step
    round instead of per message). The decision-index semantics that the
    schedule explorer relies on — Euclidean wrapping and the oldest-first
    FIFO fallback — live here so every consumer shares one definition
    (they were previously private to [explore.ml]; the regression tests
    in [test_explore.ml] pin them). *)

type decide = live:int -> step:int -> int option
(** A scripted decision source: with [live] messages pending at delivery
    step [step], name the live index to deliver next, or [None] when the
    script is exhausted. Any int is a valid decision — see {!wrap}. *)

type t =
  | Rounds
      (** Synchronous lock-step rounds: every process ticks, faulty
          edges pass through the adversary, every process receives its
          whole batch — the {!Sync} model. *)
  | Fifo  (** Deliver in global send order — the {!Async} default. *)
  | Random of int
      (** Uniformly random pending message, seeded ({!Async}'s
          [Random_order]). *)
  | Delayed of { victims : int list; slack : int }
      (** Deprioritize messages {e from} [victims]: deliver one only
          when it has waited [slack] steps or nothing else is pending
          ({!Async}'s [Delay]) — adversarial but fair. *)
  | Scripted of { decide : decide; fallback_fifo : bool }
      (** Deliver whatever [decide] names, wrapped by {!wrap}. When the
          script is exhausted: with [fallback_fifo] finish oldest-first,
          without it stop the run with [`Branch live] so an explorer can
          enumerate the open choices. The {!Explore} scheduler. *)

val wrap : decision:int -> live:int -> int
(** Euclidean decision wrapping, [((d mod live) + live) mod live]: maps
    any int onto a valid live index in [0, live) — [-1] names the last
    live slot, [d + live] is equivalent to [d], and [min_int] cannot
    crash the core. Requires [live > 0]. Pinned by the "decision index
    wrapping" regression tests and a shift-invariance property test;
    change this and {!Explore.shrink}'s canonicalized schedules break. *)

val of_decisions : int list -> decide
(** Pop decisions off a list, [None] when exhausted. The returned
    closure is single-use (it consumes its list). *)
