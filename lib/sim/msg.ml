type 'payload envelope = {
  src : int;
  dst : int;
  time : int;
  payload : 'payload;
}

let envelope ~src ~dst ~time payload = { src; dst; time; payload }

let log_src = Logs.Src.create "rbvc.sim" ~doc:"RBVC simulator deliveries"

module Log = (val Logs.src_log log_src : Logs.LOG)

let pp_envelope pp_payload ppf e =
  Format.fprintf ppf "@[<h>[r%d] %d -> %d: %a@]" e.time e.src e.dst
    pp_payload e.payload

let debug_delivery ~pp e =
  Log.debug (fun m -> m "%a" (pp_envelope pp) e)
