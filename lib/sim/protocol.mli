(** The protocol interface of the unified execution engine.

    A protocol is what runs {e at} each process: per-process state plus
    hooks the {!Engine} calls as the execution unfolds. One protocol
    value describes all [n] processes of a run (hooks receive the
    process's own state); the engine owns the network, the scheduler,
    the fault model, and all tracing/metrics, so a protocol written
    against this interface runs unchanged under synchronous lock-step
    rounds, asynchronous delivery, or scripted schedule exploration.

    Hooks return messages as [(destination, payload)] lists;
    destinations are in [0 .. n-1] and self-sends are allowed. All hooks
    may mutate their state. *)

type ('state, 'msg, 'output) t = {
  init : me:int -> 'state;
      (** Fresh state for process [me], called once per process at the
          start of a run (unless the caller supplies pre-built states —
          see {!Engine.run}). *)
  on_start : 'state -> (int * 'msg) list;
      (** Initial sends, collected once before the first round or
          delivery step. *)
  on_receive : 'state -> time:int -> (int * 'msg) list -> (int * 'msg) list;
      (** Delivery. Under the {!Scheduler.Rounds} scheduler, [time] is
          the round number and the batch is the whole round's inbox,
          [(source, payload)] sorted by source; under every step
          scheduler, [time] is the delivery step and the batch is a
          single message. Returned sends are enqueued immediately (step
          schedulers) or join the next round's outbox (rounds). *)
  on_tick : 'state -> time:int -> (int * 'msg) list;
      (** Start-of-round sends. Called once per round by the
          {!Scheduler.Rounds} scheduler, never by step schedulers. *)
  output : 'state -> 'output;
      (** Read the protocol's result out of a final state. The engine
          never calls this ({!Engine.run} returns the states); graders
          and experiment harnesses apply it on demand. *)
}

val actor : init:(me:int -> 'state) -> ('state, 'msg, 'output) t
(** Skeleton with empty hooks: [on_start]/[on_tick] send nothing,
    [on_receive] ignores its batch, [output] raises [Invalid_argument].
    Override the hooks the protocol needs with record update syntax —
    also the idiomatic way to express a crashed-from-birth process. *)
