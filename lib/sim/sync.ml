type 'msg actor = {
  send : round:int -> (int * 'msg) list;
  recv : round:int -> (int * 'msg) list -> unit;
}

let run ~n ~rounds ~actors ?(faulty = []) ?(adversary = Adversary.honest) () =
  if Array.length actors <> n then invalid_arg "Sync.run: need n actors";
  List.iter
    (fun p ->
      if p < 0 || p >= n then invalid_arg "Sync.run: faulty id out of range")
    faulty;
  let is_faulty = Array.make n false in
  List.iter (fun p -> is_faulty.(p) <- true) faulty;
  let trace = Trace.create () in
  (* hoisted: the tracing checks below cost one branch per site when no
     buffer is installed on this domain *)
  let tr = Obs.Tracer.active () in
  let flow_ids = ref 0 in
  for round = 0 to rounds - 1 do
    trace.Trace.rounds <- trace.Trace.rounds + 1;
    if tr then begin
      Obs.Tracer.set_now round;
      Obs.Tracer.emit ~lclock:round Obs.Tracer.Begin "round"
        [ ("round", Obs.Tracer.Int round) ]
    end;
    (* Gather honest outboxes. *)
    let outbox =
      Array.map
        (fun actor ->
          let msgs = actor.send ~round in
          List.iter
            (fun (dst, _) ->
              if dst < 0 || dst >= n then
                invalid_arg "Sync.run: destination out of range")
            msgs;
          msgs)
        actors
    in
    (* Apply the adversary on faulty sources, edge by edge. *)
    let inboxes = Array.make n [] in
    for src = 0 to n - 1 do
      if is_faulty.(src) then
        for dst = 0 to n - 1 do
          let honest_msgs =
            List.filter_map
              (fun (d, m) -> if d = dst then Some m else None)
              outbox.(src)
          in
          (* The adversary sees each honest message on this edge (or None
             when there is none) and answers with what actually flows. *)
          let adv_instant name =
            if tr then
              Obs.Tracer.instant ~track:src ~lclock:round ("adv." ^ name)
                [ ("dst", Obs.Tracer.Int dst) ]
          in
          let consider honest_msg =
            trace.Trace.messages_sent <- trace.Trace.messages_sent + 1;
            match adversary ~round ~src ~dst honest_msg with
            | None ->
                adv_instant "drop";
                trace.Trace.messages_dropped <-
                  trace.Trace.messages_dropped + 1
            | Some m ->
                (match honest_msg with
                | Some h when h != m ->
                    adv_instant "corrupt";
                    trace.Trace.messages_corrupted <-
                      trace.Trace.messages_corrupted + 1
                | _ -> ());
                trace.Trace.messages_delivered <-
                  trace.Trace.messages_delivered + 1;
                inboxes.(dst) <- (src, m) :: inboxes.(dst)
          in
          (match honest_msgs with
          | [] -> (
              (* allow fabrication on a quiet edge *)
              match adversary ~round ~src ~dst None with
              | None -> ()
              | Some m ->
                  adv_instant "fabricate";
                  trace.Trace.messages_sent <- trace.Trace.messages_sent + 1;
                  trace.Trace.messages_corrupted <-
                    trace.Trace.messages_corrupted + 1;
                  trace.Trace.messages_delivered <-
                    trace.Trace.messages_delivered + 1;
                  inboxes.(dst) <- (src, m) :: inboxes.(dst))
          | msgs -> List.iter (fun m -> consider (Some m)) msgs)
        done
      else
        List.iter
          (fun (dst, m) ->
            trace.Trace.messages_sent <- trace.Trace.messages_sent + 1;
            trace.Trace.messages_delivered <-
              trace.Trace.messages_delivered + 1;
            inboxes.(dst) <- (src, m) :: inboxes.(dst))
          outbox.(src)
    done;
    (* Deliver, sorted by source for determinism. *)
    Array.iteri
      (fun dst actor ->
        let batch =
          List.stable_sort
            (fun (a, _) (b, _) -> compare a b)
            (List.rev inboxes.(dst))
        in
        if tr then begin
          Obs.Tracer.emit ~track:dst ~lclock:round Obs.Tracer.Begin "recv"
            [ ("msgs", Obs.Tracer.Int (List.length batch)) ];
          (* a synchronous round delivers in the round it sends, so the
             flow pair is emitted at delivery: the arrow still runs
             src -> dst across tracks *)
          List.iter
            (fun (src, _) ->
              let id = !flow_ids in
              incr flow_ids;
              Obs.Tracer.flow_start ~track:src ~lclock:round ~id "msg";
              Obs.Tracer.flow_end ~track:dst ~lclock:round ~id "msg")
            batch
        end;
        actor.recv ~round batch;
        if tr then
          Obs.Tracer.emit ~track:dst ~lclock:round Obs.Tracer.End "recv" [])
      actors;
    if tr then Obs.Tracer.emit ~lclock:round Obs.Tracer.End "round" []
  done;
  Trace.publish ~prefix:"sim.sync" trace;
  trace
