type 'msg actor = {
  send : round:int -> (int * 'msg) list;
  recv : round:int -> (int * 'msg) list -> unit;
}

let run ~n ~rounds ~actors ?(faulty = []) ?(adversary = Adversary.honest) () =
  if Array.length actors <> n then invalid_arg "Sync.run: need n actors";
  List.iter
    (fun p ->
      if p < 0 || p >= n then invalid_arg "Sync.run: faulty id out of range")
    faulty;
  let is_faulty = Array.make n false in
  List.iter (fun p -> is_faulty.(p) <- true) faulty;
  let trace = Trace.create () in
  for round = 0 to rounds - 1 do
    trace.Trace.rounds <- trace.Trace.rounds + 1;
    (* Gather honest outboxes. *)
    let outbox =
      Array.map
        (fun actor ->
          let msgs = actor.send ~round in
          List.iter
            (fun (dst, _) ->
              if dst < 0 || dst >= n then
                invalid_arg "Sync.run: destination out of range")
            msgs;
          msgs)
        actors
    in
    (* Apply the adversary on faulty sources, edge by edge. *)
    let inboxes = Array.make n [] in
    for src = 0 to n - 1 do
      if is_faulty.(src) then
        for dst = 0 to n - 1 do
          let honest_msgs =
            List.filter_map
              (fun (d, m) -> if d = dst then Some m else None)
              outbox.(src)
          in
          (* The adversary sees each honest message on this edge (or None
             when there is none) and answers with what actually flows. *)
          let consider honest_msg =
            trace.Trace.messages_sent <- trace.Trace.messages_sent + 1;
            match adversary ~round ~src ~dst honest_msg with
            | None ->
                trace.Trace.messages_dropped <-
                  trace.Trace.messages_dropped + 1
            | Some m ->
                (match honest_msg with
                | Some h when h != m ->
                    trace.Trace.messages_corrupted <-
                      trace.Trace.messages_corrupted + 1
                | _ -> ());
                trace.Trace.messages_delivered <-
                  trace.Trace.messages_delivered + 1;
                inboxes.(dst) <- (src, m) :: inboxes.(dst)
          in
          (match honest_msgs with
          | [] -> (
              (* allow fabrication on a quiet edge *)
              match adversary ~round ~src ~dst None with
              | None -> ()
              | Some m ->
                  trace.Trace.messages_sent <- trace.Trace.messages_sent + 1;
                  trace.Trace.messages_corrupted <-
                    trace.Trace.messages_corrupted + 1;
                  trace.Trace.messages_delivered <-
                    trace.Trace.messages_delivered + 1;
                  inboxes.(dst) <- (src, m) :: inboxes.(dst))
          | msgs -> List.iter (fun m -> consider (Some m)) msgs)
        done
      else
        List.iter
          (fun (dst, m) ->
            trace.Trace.messages_sent <- trace.Trace.messages_sent + 1;
            trace.Trace.messages_delivered <-
              trace.Trace.messages_delivered + 1;
            inboxes.(dst) <- (src, m) :: inboxes.(dst))
          outbox.(src)
    done;
    (* Deliver, sorted by source for determinism. *)
    Array.iteri
      (fun dst actor ->
        let batch =
          List.stable_sort
            (fun (a, _) (b, _) -> compare a b)
            (List.rev inboxes.(dst))
        in
        actor.recv ~round batch)
      actors
  done;
  Trace.publish ~prefix:"sim.sync" trace;
  trace
