type 'msg actor = {
  send : round:int -> (int * 'msg) list;
  recv : round:int -> (int * 'msg) list -> unit;
}

(* A [Sync] actor as an engine protocol: per-process state is the actor
   itself, [send]/[recv] map onto the tick/receive hooks. *)
let protocol_of_actors actors =
  {
    Protocol.init = (fun ~me -> actors.(me));
    on_start = (fun _ -> []);
    on_tick = (fun a ~time -> a.send ~round:time);
    on_receive =
      (fun a ~time batch ->
        a.recv ~round:time batch;
        []);
    output = (fun _ -> ());
  }

let run ~n ~rounds ~actors ?(faulty = []) ?(adversary = Adversary.honest)
    ?fault () =
  if Array.length actors <> n then invalid_arg "Sync.run: need n actors";
  let outcome =
    Engine.run
      ~faults:(Fault.overlay ~faulty adversary fault)
      ~obs_prefix:"sim.sync" ~err:"Sync.run" ~n
      ~protocol:(protocol_of_actors actors) ~scheduler:Scheduler.Rounds
      ~limit:rounds ()
  in
  outcome.Engine.trace
