type 'msg actor = {
  send : round:int -> (int * 'msg) list;
  recv : round:int -> (int * 'msg) list -> unit;
}

(* A [Sync] actor as an engine protocol: per-process state is the actor
   itself, [send]/[recv] map onto the tick/receive hooks. *)
let protocol_of_actors actors =
  {
    Protocol.init = (fun ~me -> actors.(me));
    on_start = (fun _ -> []);
    on_tick = (fun a ~time -> a.send ~round:time);
    on_receive =
      (fun a ~time batch ->
        a.recv ~round:time batch;
        []);
    output = (fun _ -> ());
  }
