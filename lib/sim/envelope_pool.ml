(* Dense envelope storage for the step engine.

   The engine's unit of work is one in-flight message ("envelope"). The
   pre-pool engine kept envelopes in an option array and re-scanned it on
   every delivery, so a run's cost was O(steps * pending) — the wall
   between n ~ 10 experiments and n in the thousands. This module makes
   every envelope operation O(1) amortized (O(log pending) for the two
   order-statistic queries) by splitting storage from ordering:

   - The {e arena} holds envelope fields in parallel flat arrays indexed
     by {e slot}. Slots are recycled through a free-list stack, so arena
     memory is bounded by the peak number of simultaneously pending
     messages, not by the total sent. The scheduling-relevant fields
     (seq/src/dst/born/ready) are unboxed int arrays; only the payload
     array is boxed.

   - Ordering lives in seq-indexed side structures. Sequence numbers are
     assigned monotonically at send time, and in the stable pool the
     engine's historical "slot order" is exactly seq order, so every
     scheduler question becomes a question about the set of live seqs:

       Fifo               -> smallest live seq: a monotone cursor that
                             skips delivered seqs (O(1) amortized).
       Delayed            -> smallest live seq per victim class: one
                             cursor per class.
       Random             -> k-th smallest live seq: a Fenwick tree over
                             the seq domain (O(log) add/remove/select).
       fault-model delays -> immature envelopes wait in a binary min-heap
                             keyed (ready, seq) and migrate into
                             per-class eligibility Fenwick trees as the
                             step clock passes their arrival time; each
                             envelope migrates at most once.

   - The dense pool (Scripted scheduler) keeps live envelopes contiguous
     in [0, live) with swap-with-last removal — the layout decision
     indices address and {!Explore} replays — plus a seq->position map so
     the FIFO fallback finds the oldest envelope with a cursor instead of
     a scan.

   Pools are single-run, single-domain values; the engine creates one
   per execution. *)

(* ------------------------------------------------------------------ *)
(* Fenwick tree over the seq domain: position [seq + 1] carries 0 or 1. *)

module Fen = struct
  type t = { mutable a : int array; mutable n : int; mutable total : int }

  let create () = { a = Array.make 17 0; n = 16; total = 0 }

  (* [n] stays a power of two, so on doubling every existing node keeps
     its range and the only new node covering old positions is the root
     [2n], whose range sum is the current total. *)
  let rec ensure t pos =
    if pos > t.n then begin
      let n' = 2 * t.n in
      let a' = Array.make (n' + 1) 0 in
      Array.blit t.a 1 a' 1 t.n;
      a'.(n') <- t.total;
      t.a <- a';
      t.n <- n';
      ensure t pos
    end

  let add t seq delta =
    let pos = seq + 1 in
    ensure t pos;
    let p = ref pos in
    while !p <= t.n do
      Array.unsafe_set t.a !p (Array.unsafe_get t.a !p + delta);
      p := !p + (!p land - !p)
    done;
    t.total <- t.total + delta

  (* Smallest seq whose prefix count reaches [k + 1]; requires
     [k < total]. *)
  let select t k =
    let idx = ref 0 and rem = ref (k + 1) and bit = ref t.n in
    while !bit > 0 do
      let next = !idx + !bit in
      if next <= t.n && Array.unsafe_get t.a next < !rem then begin
        rem := !rem - Array.unsafe_get t.a next;
        idx := next
      end;
      bit := !bit lsr 1
    done;
    !idx
end

(* ------------------------------------------------------------------ *)
(* Binary min-heap of immature envelopes, keyed (ready, seq).           *)

module Heap = struct
  type t = { mutable r : int array; mutable s : int array; mutable len : int }

  let create () = { r = Array.make 16 0; s = Array.make 16 0; len = 0 }

  let less t i j =
    let ri = Array.unsafe_get t.r i and rj = Array.unsafe_get t.r j in
    ri < rj || (ri = rj && Array.unsafe_get t.s i < Array.unsafe_get t.s j)

  let swap t i j =
    let r = t.r.(i) and s = t.s.(i) in
    t.r.(i) <- t.r.(j);
    t.s.(i) <- t.s.(j);
    t.r.(j) <- r;
    t.s.(j) <- s

  let push t ~ready ~seq =
    if t.len = Array.length t.r then begin
      let cap = 2 * t.len in
      let r' = Array.make cap 0 and s' = Array.make cap 0 in
      Array.blit t.r 0 r' 0 t.len;
      Array.blit t.s 0 s' 0 t.len;
      t.r <- r';
      t.s <- s'
    end;
    t.r.(t.len) <- ready;
    t.s.(t.len) <- seq;
    t.len <- t.len + 1;
    let i = ref (t.len - 1) in
    while !i > 0 && less t !i ((!i - 1) / 2) do
      swap t !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let top_ready t = t.r.(0)

  let pop t =
    let seq = t.s.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.r.(0) <- t.r.(t.len);
      t.s.(0) <- t.s.(t.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < t.len && less t l !m then m := l;
        if r < t.len && less t r !m then m := r;
        if !m = !i then continue := false
        else begin
          swap t !i !m;
          i := !m
        end
      done
    end;
    seq
end

(* ------------------------------------------------------------------ *)
(* Stable pool: slot order == seq order (Fifo / Random / Delayed).      *)

(* Eligibility state of a live seq under fault-model delays. *)
let st_immature = '\000' (* waiting in the heap *)
let st_eligible = '\001' (* counted in an eligibility Fenwick tree *)
let st_detached = '\002' (* popped for fast-forward delivery *)

type 'm stable = {
  (* arena: parallel per-slot fields, recycled through [free] *)
  mutable cap : int;
  mutable a_seq : int array;
  mutable a_src : int array;
  mutable a_dst : int array;
  mutable a_born : int array;
  mutable a_msg : 'm option array;
  mutable free : int array;  (** stack of recycled slots *)
  mutable free_top : int;
  mutable hi : int;  (** slots [>= hi] have never been used *)
  (* seq-indexed order index *)
  mutable slot_of_seq : int array;  (** -1 once delivered *)
  mutable next_seq : int;
  mutable live : int;
  mutable max_live : int;
  mutable head : int;  (** Fifo cursor: every seq below is dead *)
  mutable head_v : int;  (** Delayed cursors, one per victim class *)
  mutable head_n : int;
  mutable klass : Bytes.t;  (** victim bit per seq (Delayed only) *)
  (* optional order structures, chosen by the scheduler at creation *)
  fen_live : Fen.t option;  (** live seqs (Random without delays) *)
  heap : Heap.t option;  (** immature envelopes (delays) *)
  elig : Fen.t option;  (** eligible seqs (Fifo/Random with delays) *)
  elig_v : Fen.t option;  (** eligible victim seqs (Delayed + delays) *)
  elig_n : Fen.t option;
  mutable state : Bytes.t;  (** per-seq eligibility state (delays) *)
  track_classes : bool;
  delays : bool;
}

type 'm t = Stable of 'm stable | Dense of 'm dense

and 'm dense = {
  mutable d_cap : int;
  mutable d_seq : int array;
  mutable d_src : int array;
  mutable d_dst : int array;
  mutable d_msg : 'm option array;
  mutable d_live : int;
  mutable d_next_seq : int;
  mutable pos_of_seq : int array;  (** -1 once delivered *)
  mutable d_head : int;  (** oldest-live cursor for the FIFO fallback *)
  mutable d_max_live : int;
}

let initial_cap = 16

let stable ?(delays = false) ?(random = false) ?(classes = false) () =
  Stable
    {
      cap = initial_cap;
      a_seq = Array.make initial_cap 0;
      a_src = Array.make initial_cap 0;
      a_dst = Array.make initial_cap 0;
      a_born = Array.make initial_cap 0;
      a_msg = Array.make initial_cap None;
      free = Array.make initial_cap 0;
      free_top = 0;
      hi = 0;
      slot_of_seq = Array.make initial_cap (-1);
      next_seq = 0;
      live = 0;
      max_live = 0;
      head = 0;
      head_v = 0;
      head_n = 0;
      klass = (if classes then Bytes.make initial_cap '\000' else Bytes.empty);
      fen_live = (if random && not delays then Some (Fen.create ()) else None);
      heap = (if delays then Some (Heap.create ()) else None);
      elig =
        (if delays && not classes then Some (Fen.create ()) else None);
      elig_v = (if delays && classes then Some (Fen.create ()) else None);
      elig_n = (if delays && classes then Some (Fen.create ()) else None);
      state = (if delays then Bytes.make initial_cap st_immature else Bytes.empty);
      track_classes = classes;
      delays;
    }

let dense () =
  Dense
    {
      d_cap = initial_cap;
      d_seq = Array.make initial_cap 0;
      d_src = Array.make initial_cap 0;
      d_dst = Array.make initial_cap 0;
      d_msg = Array.make initial_cap None;
      d_live = 0;
      d_next_seq = 0;
      pos_of_seq = Array.make initial_cap (-1);
      d_head = 0;
      d_max_live = 0;
    }

let live = function Stable p -> p.live | Dense p -> p.d_live
let next_seq = function Stable p -> p.next_seq | Dense p -> p.d_next_seq
let capacity = function Stable p -> p.cap | Dense p -> p.d_cap
let max_live = function Stable p -> p.max_live | Dense p -> p.d_max_live

(* ---------- stable pool internals ---------- *)

let grow_int a cap fill =
  let a' = Array.make cap fill in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let grow_bytes b cap fill =
  let b' = Bytes.make cap fill in
  Bytes.blit b 0 b' 0 (Bytes.length b);
  b'

(* Make room for one more arena slot, doubling the parallel arrays. *)
let stable_grow_arena p =
  let cap = 2 * p.cap in
  p.a_seq <- grow_int p.a_seq cap 0;
  p.a_src <- grow_int p.a_src cap 0;
  p.a_dst <- grow_int p.a_dst cap 0;
  p.a_born <- grow_int p.a_born cap 0;
  let m' = Array.make cap None in
  Array.blit p.a_msg 0 m' 0 p.cap;
  p.a_msg <- m';
  p.free <- grow_int p.free cap 0;
  p.cap <- cap

let stable_alloc_slot p =
  if p.free_top > 0 then begin
    p.free_top <- p.free_top - 1;
    p.free.(p.free_top)
  end
  else begin
    if p.hi = p.cap then stable_grow_arena p;
    let s = p.hi in
    p.hi <- p.hi + 1;
    s
  end

let stable_ensure_seq p seq =
  if seq >= Array.length p.slot_of_seq then begin
    let cap = 2 * Array.length p.slot_of_seq in
    let cap = if cap > seq then cap else seq + 1 in
    p.slot_of_seq <- grow_int p.slot_of_seq cap (-1)
  end;
  if p.track_classes && seq >= Bytes.length p.klass then
    p.klass <- grow_bytes p.klass (2 * Bytes.length p.klass) '\000';
  if p.delays && seq >= Bytes.length p.state then
    p.state <- grow_bytes p.state (2 * Bytes.length p.state) st_immature

let class_fen p victim =
  if victim then Option.get p.elig_v else Option.get p.elig_n

let stable_push p ~now ~victim ~src ~dst ~born ~ready msg =
  let seq = p.next_seq in
  stable_ensure_seq p seq;
  let slot = stable_alloc_slot p in
  p.a_seq.(slot) <- seq;
  p.a_src.(slot) <- src;
  p.a_dst.(slot) <- dst;
  p.a_born.(slot) <- born;
  p.a_msg.(slot) <- Some msg;
  p.slot_of_seq.(seq) <- slot;
  if p.track_classes then
    Bytes.set p.klass seq (if victim then '\001' else '\000');
  (match p.fen_live with Some f -> Fen.add f seq 1 | None -> ());
  if p.delays then
    if ready <= now then begin
      Bytes.set p.state seq st_eligible;
      let f =
        if p.track_classes then class_fen p victim else Option.get p.elig
      in
      Fen.add f seq 1
    end
    else begin
      Bytes.set p.state seq st_immature;
      Heap.push (Option.get p.heap) ~ready ~seq
    end;
  p.next_seq <- seq + 1;
  p.live <- p.live + 1;
  if p.live > p.max_live then p.max_live <- p.live

(* Migrate envelopes whose arrival time has passed from the immature
   heap into the eligibility Fenwick trees; each migrates at most once. *)
let stable_mature p ~now =
  match p.heap with
  | None -> ()
  | Some h ->
      while h.Heap.len > 0 && Heap.top_ready h <= now do
        let seq = Heap.pop h in
        Bytes.set p.state seq st_eligible;
        let f =
          if p.track_classes then
            class_fen p (Bytes.get p.klass seq = '\001')
          else Option.get p.elig
        in
        Fen.add f seq 1
      done

let stable_first_live p =
  let lim = p.next_seq in
  let h = ref p.head in
  while !h < lim && p.slot_of_seq.(!h) < 0 do
    incr h
  done;
  p.head <- !h;
  if !h = lim then -1 else !h

(* Per-class cursor: skips dead seqs and live seqs of the other class,
   both permanently (class membership is fixed at send time). *)
let stable_first_live_class p ~victim =
  let lim = p.next_seq in
  let want = if victim then '\001' else '\000' in
  let h = ref (if victim then p.head_v else p.head_n) in
  while
    !h < lim
    && (p.slot_of_seq.(!h) < 0 || Bytes.get p.klass !h <> want)
  do
    incr h
  done;
  if victim then p.head_v <- !h else p.head_n <- !h;
  if !h = lim then -1 else !h

let stable_kth_live p k = Fen.select (Option.get p.fen_live) k
let stable_eligible_count p = (Option.get p.elig).Fen.total

let stable_first_eligible p =
  let f = Option.get p.elig in
  if f.Fen.total = 0 then -1 else Fen.select f 0

let stable_kth_eligible p k = Fen.select (Option.get p.elig) k

let stable_first_eligible_class p ~victim =
  let f = class_fen p victim in
  if f.Fen.total = 0 then -1 else Fen.select f 0

let stable_min_ready_pop p =
  let seq = Heap.pop (Option.get p.heap) in
  Bytes.set p.state seq st_detached;
  seq

let stable_born_of p seq = p.a_born.(p.slot_of_seq.(seq))

let stable_remove p seq =
  let slot = p.slot_of_seq.(seq) in
  p.slot_of_seq.(seq) <- -1;
  (match p.fen_live with Some f -> Fen.add f seq (-1) | None -> ());
  if p.delays && Bytes.get p.state seq = st_eligible then begin
    let f =
      if p.track_classes then class_fen p (Bytes.get p.klass seq = '\001')
      else Option.get p.elig
    in
    Fen.add f seq (-1)
  end;
  let src = p.a_src.(slot) and dst = p.a_dst.(slot) in
  let msg = match p.a_msg.(slot) with Some m -> m | None -> assert false in
  p.a_msg.(slot) <- None;
  p.free.(p.free_top) <- slot;
  p.free_top <- p.free_top + 1;
  p.live <- p.live - 1;
  (src, dst, msg)

(* ---------- dense pool internals ---------- *)

let dense_grow p =
  let cap = 2 * p.d_cap in
  p.d_seq <- grow_int p.d_seq cap 0;
  p.d_src <- grow_int p.d_src cap 0;
  p.d_dst <- grow_int p.d_dst cap 0;
  let m' = Array.make cap None in
  Array.blit p.d_msg 0 m' 0 p.d_cap;
  p.d_msg <- m';
  p.d_cap <- cap

let dense_push p ~src ~dst msg =
  let seq = p.d_next_seq in
  if p.d_live = p.d_cap then dense_grow p;
  if seq >= Array.length p.pos_of_seq then
    p.pos_of_seq <- grow_int p.pos_of_seq (2 * Array.length p.pos_of_seq) (-1);
  let i = p.d_live in
  p.d_seq.(i) <- seq;
  p.d_src.(i) <- src;
  p.d_dst.(i) <- dst;
  p.d_msg.(i) <- Some msg;
  p.pos_of_seq.(seq) <- i;
  p.d_next_seq <- seq + 1;
  p.d_live <- i + 1;
  if p.d_live > p.d_max_live then p.d_max_live <- p.d_live

let dense_remove_at p i =
  let last = p.d_live - 1 in
  let seq = p.d_seq.(i) and src = p.d_src.(i) and dst = p.d_dst.(i) in
  let msg = match p.d_msg.(i) with Some m -> m | None -> assert false in
  if i <> last then begin
    p.d_seq.(i) <- p.d_seq.(last);
    p.d_src.(i) <- p.d_src.(last);
    p.d_dst.(i) <- p.d_dst.(last);
    p.d_msg.(i) <- p.d_msg.(last);
    p.pos_of_seq.(p.d_seq.(i)) <- i
  end;
  p.d_msg.(last) <- None;
  p.pos_of_seq.(seq) <- -1;
  p.d_live <- last;
  (seq, src, dst, msg)

(* Dense position of the oldest (smallest-seq) live envelope. *)
let dense_oldest_pos p =
  let lim = p.d_next_seq in
  let h = ref p.d_head in
  while !h < lim && p.pos_of_seq.(!h) < 0 do
    incr h
  done;
  p.d_head <- !h;
  if !h = lim then -1 else p.pos_of_seq.(!h)

(* ---------- facade ---------- *)

let push t ~now ~victim ~src ~dst ~born ~ready msg =
  match t with
  | Stable p -> stable_push p ~now ~victim ~src ~dst ~born ~ready msg
  | Dense p ->
      ignore now;
      ignore victim;
      ignore born;
      ignore ready;
      dense_push p ~src ~dst msg

let mature t ~now =
  match t with Stable p -> stable_mature p ~now | Dense _ -> ()

let first_live = function
  | Stable p -> stable_first_live p
  | Dense _ -> invalid_arg "Envelope_pool.first_live: dense pool"

let first_live_class t ~victim =
  match t with
  | Stable p -> stable_first_live_class p ~victim
  | Dense _ -> invalid_arg "Envelope_pool.first_live_class: dense pool"

let kth_live t k =
  match t with
  | Stable p -> stable_kth_live p k
  | Dense _ -> invalid_arg "Envelope_pool.kth_live: dense pool"

let eligible_count = function
  | Stable p -> stable_eligible_count p
  | Dense _ -> invalid_arg "Envelope_pool.eligible_count: dense pool"

let first_eligible = function
  | Stable p -> stable_first_eligible p
  | Dense _ -> invalid_arg "Envelope_pool.first_eligible: dense pool"

let kth_eligible t k =
  match t with
  | Stable p -> stable_kth_eligible p k
  | Dense _ -> invalid_arg "Envelope_pool.kth_eligible: dense pool"

let first_eligible_class t ~victim =
  match t with
  | Stable p -> stable_first_eligible_class p ~victim
  | Dense _ -> invalid_arg "Envelope_pool.first_eligible_class: dense pool"

let min_ready_pop = function
  | Stable p -> stable_min_ready_pop p
  | Dense _ -> invalid_arg "Envelope_pool.min_ready_pop: dense pool"

let born_of t seq =
  match t with
  | Stable p -> stable_born_of p seq
  | Dense _ -> invalid_arg "Envelope_pool.born_of: dense pool"

let remove_seq t seq =
  match t with
  | Stable p -> stable_remove p seq
  | Dense _ -> invalid_arg "Envelope_pool.remove_seq: dense pool"

let remove_at t i =
  match t with
  | Dense p -> dense_remove_at p i
  | Stable _ -> invalid_arg "Envelope_pool.remove_at: stable pool"

let oldest_pos = function
  | Dense p -> dense_oldest_pos p
  | Stable _ -> invalid_arg "Envelope_pool.oldest_pos: stable pool"

(* Fold over the live envelopes in slot order: seq order for a stable
   pool, dense-position order for a dense one. *)
let fold_pending t f acc =
  match t with
  | Stable p ->
      let acc = ref acc in
      for seq = 0 to p.next_seq - 1 do
        let slot = p.slot_of_seq.(seq) in
        if slot >= 0 then
          acc :=
            f !acc ~seq ~src:p.a_src.(slot) ~dst:p.a_dst.(slot)
              (match p.a_msg.(slot) with Some m -> m | None -> assert false)
      done;
      !acc
  | Dense p ->
      let acc = ref acc in
      for i = 0 to p.d_live - 1 do
        acc :=
          f !acc ~seq:p.d_seq.(i) ~src:p.d_src.(i) ~dst:p.d_dst.(i)
            (match p.d_msg.(i) with Some m -> m | None -> assert false)
      done;
      !acc
