(** Message envelopes and debug logging for the simulators.

    The executors ({!Sync}, {!Async}) are engine code; this module holds
    the cross-cutting conveniences: a generic envelope for recording
    traffic, and a [Logs] source that the executors use for per-delivery
    debug traces (enable with [Logs.set_level (Some Debug)] and a
    reporter). *)

type 'payload envelope = {
  src : int;
  dst : int;
  time : int;
      (** logical time of delivery: the synchronous round number under
          {!Sync}, or the asynchronous delivery step under {!Async} —
          one monotone clock, whatever the executor calls its tick *)
  payload : 'payload;
}

val envelope : src:int -> dst:int -> time:int -> 'p -> 'p envelope

val log_src : Logs.src
(** The ["rbvc.sim"] log source. *)

val debug_delivery :
  pp:(Format.formatter -> 'p -> unit) -> 'p envelope -> unit
(** Emit a debug-level log line for one delivery (no-op unless debug
    logging is enabled). *)

val pp_envelope :
  (Format.formatter -> 'p -> unit) ->
  Format.formatter ->
  'p envelope ->
  unit
