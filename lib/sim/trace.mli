(** Execution statistics collected by the simulators. *)

type t = {
  mutable rounds : int;  (** synchronous rounds executed *)
  mutable steps : int;  (** asynchronous delivery steps executed *)
  mutable messages_sent : int;  (** messages emitted by processes *)
  mutable messages_delivered : int;  (** messages actually delivered *)
  mutable messages_dropped : int;  (** suppressed by the adversary *)
  mutable messages_corrupted : int;  (** altered by the adversary *)
}

val create : unit -> t
val pp : Format.formatter -> t -> unit

val publish : prefix:string -> t -> unit
(** Add this trace's totals to the {!Obs} counters [prefix ^ ".runs"],
    [".rounds"], [".steps"], [".msgs_sent"], [".msgs_delivered"],
    [".msgs_dropped"], [".msgs_corrupted"]. One call per completed run
    (not per message), so instrumentation cost is independent of
    execution length. No-op when metrics are disabled. *)

(** {1 Structured delivery events}

    One record per delivery step, produced by the schedule-exploration
    engine ({!Explore}) so a counterexample schedule can be printed and
    re-run byte-for-byte. *)

type event = {
  step : int;  (** delivery step at which the message was consumed *)
  src : int;  (** sender *)
  dst : int;  (** receiver *)
  info : string;  (** human-readable message summary (may be empty) *)
}

val pp_event : Format.formatter -> event -> unit
val pp_events : Format.formatter -> event list -> unit

val emit_tracer_events : event list -> unit
(** Re-emit a stored counterexample schedule into the current
    {!Obs.Tracer} buffer — one delivery span plus a send→deliver flow
    per event, stamped with the event's delivery step as the logical
    clock. No-op when no buffer is installed. Prefer a traced
    {!Explore.replay} when the protocol can be re-executed; this is for
    witnesses that survive only as their [event list]. *)
