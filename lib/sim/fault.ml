type 'msg model = {
  faulty : int list;
  adversary : 'msg Adversary.t;
  delay_of : (src:int -> dst:int -> k:int -> int) option;
}

let none = { faulty = []; adversary = Adversary.honest; delay_of = None }
let byzantine ~faulty adversary = { faulty; adversary; delay_of = None }

let crash ~faulty ~at =
  if at < 0 then invalid_arg "Fault.crash: crash time must be >= 0";
  { faulty; adversary = Adversary.crash_at at; delay_of = None }

let omission ~faulty ~seed ~prob =
  { faulty; adversary = Adversary.omit_prob ~seed prob; delay_of = None }

let delay_by ~seed ~max ~src ~dst ~k =
  if max < 0 then invalid_arg "Fault.delay_by: max delay must be >= 0";
  (* One fresh stream per message keeps the function pure: no per-edge
     counter state to share or race, identical at any --jobs. *)
  let edge = (src lsl 20) lor dst in
  Rng.int (Rng.stream ~root:seed ((edge * 1_000_003) + k)) (max + 1)

let delay ~seed ~max =
  if max < 0 then invalid_arg "Fault.delay: max delay must be >= 0";
  { faulty = []; adversary = Adversary.honest; delay_of = Some (delay_by ~seed ~max) }

type spec =
  | Crash of { at : int }
  | Omit of { seed : int; prob : float }
  | Delay of { seed : int; max : int }

let model ~faulty = function
  | Crash { at } -> crash ~faulty ~at
  | Omit { seed; prob } -> omission ~faulty ~seed ~prob
  | Delay { seed; max } ->
      { faulty; adversary = Adversary.honest; delay_of = Some (delay_by ~seed ~max) }

let overlay ~faulty adversary = function
  | None -> byzantine ~faulty adversary
  | Some spec ->
      let m = model ~faulty spec in
      { m with adversary = Adversary.compose adversary m.adversary }

let usage = "expected crash:T, omit:P[:SEED] or delay:MAX[:SEED]"

(* Strict decimal numerals only. [int_of_string_opt]/[float_of_string_opt]
   inherit OCaml-literal leniency — "0x3", "0o7", "1_0" and "nan" all
   parse — which is exactly the class of accidental inputs Persist's JSON
   parser rejects; a CLI spec should be no looser than a replay file. An
   optional sign and characters from the JSON number alphabet are
   admitted, then the stdlib does the (now unambiguous) conversion, which
   also keeps its overflow checks. *)
let int_of_decimal s =
  let s = String.trim s in
  let body = if String.length s > 0 && s.[0] = '-' then String.sub s 1 (String.length s - 1) else s in
  if body <> "" && String.for_all (fun c -> c >= '0' && c <= '9') body then
    int_of_string_opt s
  else None

let float_of_decimal s =
  let s = String.trim s in
  let digit = ref false in
  let ok =
    s <> ""
    && String.for_all
         (fun c ->
           if c >= '0' && c <= '9' then begin
             digit := true;
             true
           end
           else c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E')
         s
  in
  if ok && !digit then float_of_string_opt s else None

let spec_of_string s =
  let int_of = int_of_decimal in
  let float_of = float_of_decimal in
  match String.split_on_char ':' s with
  | [ "crash"; t ] -> (
      match int_of t with
      | Some at when at >= 0 -> Ok (Crash { at })
      | _ -> Error ("crash: bad time (" ^ usage ^ ")"))
  | "omit" :: p :: rest -> (
      let seed =
        match rest with [] -> Some 0 | [ sd ] -> int_of sd | _ -> None
      in
      match (float_of p, seed) with
      | Some prob, Some seed when prob >= 0. && prob <= 1. ->
          Ok (Omit { seed; prob })
      | _ -> Error ("omit: bad probability or seed (" ^ usage ^ ")"))
  | "delay" :: m :: rest -> (
      let seed =
        match rest with [] -> Some 0 | [ sd ] -> int_of sd | _ -> None
      in
      match (int_of m, seed) with
      | Some max, Some seed when max >= 0 -> Ok (Delay { seed; max })
      | _ -> Error ("delay: bad max or seed (" ^ usage ^ ")"))
  | _ -> Error usage

let pp_spec ppf = function
  | Crash { at } -> Format.fprintf ppf "crash:%d" at
  | Omit { seed; prob } -> Format.fprintf ppf "omit:%g:%d" prob seed
  | Delay { seed; max } -> Format.fprintf ppf "delay:%d:%d" max seed
