(** Dense envelope storage for the step engine.

    One pool holds a run's in-flight messages. Envelope fields live in
    flat parallel arrays indexed by recycled slots (a free-list arena),
    and scheduling order lives in seq-indexed side structures, so every
    engine operation — enqueue, scheduler pick, delivery, fast-forward —
    is O(1) amortized, or O(log pending) for the two order-statistic
    queries (k-th live envelope, earliest arrival).

    Two disciplines, chosen at creation:

    - {e stable} ({!val:stable}): envelopes are addressed by their send
      sequence number and slot order equals seq order, exactly the
      legacy engine's hole-preserving slot order. Serves the Fifo,
      Random and Delayed schedulers; creation flags pick which order
      structures are maintained (a monotone cursor, per-victim-class
      cursors, a Fenwick tree over live seqs, and — under fault-model
      delays — a (ready, seq) min-heap of immature envelopes plus
      eligibility Fenwick trees).

    - {e dense} ({!val:dense}): live envelopes stay contiguous in
      [0, live) with swap-with-last removal, the layout Scripted
      decision indices address and {!Explore} replays.

    Pools are single-run, single-domain values. Operations marked with a
    discipline raise [Invalid_argument] on the other kind. *)

type 'm t

val stable :
  ?delays:bool -> ?random:bool -> ?classes:bool -> unit -> 'm t
(** Stable pool. [delays] maintains the immature-envelope heap and
    eligibility sets (fault-model delays present); [random] the
    live-seq Fenwick tree (Random scheduler); [classes] the per-class
    cursors and victim bits (Delayed scheduler). All default false. *)

val dense : unit -> 'm t
(** Dense pool for the Scripted scheduler. *)

val live : 'm t -> int
(** Number of pending envelopes. *)

val next_seq : 'm t -> int
(** The seq the next {!push} will assign (doubles as the trace flow
    id). *)

val capacity : 'm t -> int
(** Current arena capacity in slots (the [engine.pool_capacity]
    gauge). *)

val max_live : 'm t -> int
(** High-water mark of {!live} (the [engine.pool_occupancy] gauge). *)

val push :
  'm t ->
  now:int ->
  victim:bool ->
  src:int ->
  dst:int ->
  born:int ->
  ready:int ->
  'm ->
  unit
(** Append an envelope with the next seq. Under [delays], an envelope
    with [ready <= now] is immediately eligible; otherwise it waits in
    the heap until {!mature} passes its [ready]. [victim] is its class
    under [classes]. The dense pool ignores [now]/[victim]/[born]/
    [ready]. *)

val mature : 'm t -> now:int -> unit
(** Migrate every heap envelope with [ready <= now] into the eligible
    sets. Call before the eligibility queries below; no-op without
    [delays]. *)

(** {2 Stable-pool order queries}

    All return a seq, or [-1] when the requested set is empty. *)

val first_live : 'm t -> int
(** Smallest live seq (Fifo without delays). O(1) amortized. *)

val first_live_class : 'm t -> victim:bool -> int
(** Smallest live seq of the class (Delayed without delays). O(1)
    amortized. *)

val kth_live : 'm t -> int -> int
(** [kth_live t k] is the (k+1)-smallest live seq, [0 <= k < live]
    (Random without delays; requires [random]). O(log). *)

val eligible_count : 'm t -> int
(** Eligible envelopes (requires [delays], not [classes]). *)

val first_eligible : 'm t -> int
(** Smallest eligible seq (Fifo with delays). O(log). *)

val kth_eligible : 'm t -> int -> int
(** (k+1)-smallest eligible seq (Random with delays). O(log). *)

val first_eligible_class : 'm t -> victim:bool -> int
(** Smallest eligible seq of the class (Delayed with delays). O(log). *)

val min_ready_pop : 'm t -> int
(** Detach and return the immature envelope with the smallest
    (ready, seq) — the fast-forward target when nothing is eligible.
    The caller must deliver it with {!remove_seq}. *)

val born_of : 'm t -> int -> int
(** Send step of a live envelope (the Delayed slack test). *)

val remove_seq : 'm t -> int -> int * int * 'm
(** Deliver a live envelope by seq: [(src, dst, msg)]. Frees its slot
    for reuse. *)

(** {2 Dense-pool operations} *)

val remove_at : 'm t -> int -> int * int * int * 'm
(** Deliver the envelope at dense position [i] by swap-with-last:
    [(seq, src, dst, msg)]. *)

val oldest_pos : 'm t -> int
(** Dense position of the smallest-seq live envelope (the Scripted
    FIFO fallback), or [-1] when empty. O(1) amortized. *)

val fold_pending :
  'm t ->
  ('a -> seq:int -> src:int -> dst:int -> 'm -> 'a) ->
  'a ->
  'a
(** Fold over live envelopes in slot order: seq order for a stable
    pool, dense-position order for a dense one. O(next_seq). *)
