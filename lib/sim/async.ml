type 'msg actor = {
  start : unit -> (int * 'msg) list;
  on_message : src:int -> 'msg -> (int * 'msg) list;
}

type policy =
  | Fifo
  | Random_order of int
  | Delay of { victims : int list; slack : int }

type outcome = { trace : Trace.t; quiescent : bool }

(* An [Async] actor as an engine protocol: per-process state is the
   actor itself; step schedulers deliver singleton batches, so
   [on_receive] unfolds one. *)
let protocol_of_actors actors =
  {
    Protocol.init = (fun ~me -> actors.(me));
    on_start = (fun a -> a.start ());
    on_tick = (fun _ ~time:_ -> []);
    on_receive =
      (fun a ~time:_ batch ->
        List.concat_map (fun (src, m) -> a.on_message ~src m) batch);
    output = (fun _ -> ());
  }

let scheduler_of_policy = function
  | Fifo -> Scheduler.Fifo
  | Random_order seed -> Scheduler.Random seed
  | Delay { victims; slack } -> Scheduler.Delayed { victims; slack }

let run ~n ~actors ?(faulty = []) ?(adversary = Adversary.honest)
    ?(policy = Fifo) ?(max_steps = 200_000) ?record ?summarize ?fault () =
  if Array.length actors <> n then invalid_arg "Async.run: need n actors";
  let outcome =
    Engine.run
      ~faults:(Fault.overlay ~faulty adversary fault)
      ?record ?summarize ~obs_prefix:"sim.async" ~err:"Async.run" ~n
      ~protocol:(protocol_of_actors actors)
      ~scheduler:(scheduler_of_policy policy) ~limit:max_steps ()
  in
  {
    trace = outcome.Engine.trace;
    quiescent = (outcome.Engine.stopped = `Quiescent);
  }
