type 'msg actor = {
  start : unit -> (int * 'msg) list;
  on_message : src:int -> 'msg -> (int * 'msg) list;
}

type policy =
  | Fifo
  | Random_order of int
  | Delay of { victims : int list; slack : int }

type outcome = { trace : Trace.t; quiescent : bool }

type 'msg pending = {
  src : int;
  dst : int;
  msg : 'msg;
  born : int;
  flow : int;  (** monotone send id, links send to delivery in traces *)
}

let run ~n ~actors ?(faulty = []) ?(adversary = Adversary.honest)
    ?(policy = Fifo) ?(max_steps = 200_000) ?record ?summarize () =
  if Array.length actors <> n then invalid_arg "Async.run: need n actors";
  let is_faulty = Array.make n false in
  List.iter
    (fun p ->
      if p < 0 || p >= n then invalid_arg "Async.run: faulty id out of range";
      is_faulty.(p) <- true)
    faulty;
  let trace = Trace.create () in
  (* Pending messages as a growable queue with O(1) removal by index. *)
  let pending : 'msg pending option array ref = ref (Array.make 64 None) in
  let count = ref 0 and capacity = ref 64 and live = ref 0 in
  let grow () =
    let fresh = Array.make (2 * !capacity) None in
    Array.blit !pending 0 fresh 0 !capacity;
    pending := fresh;
    capacity := 2 * !capacity
  in
  let rng =
    match policy with Random_order seed -> Some (Rng.create seed) | _ -> None
  in
  let step = ref 0 in
  (* hoisted: one branch per site when no trace buffer is installed *)
  let tr = Obs.Tracer.active () in
  let flow_ids = ref 0 in
  let enqueue ~src msgs =
    List.iter
      (fun (dst, m) ->
        if dst < 0 || dst >= n then
          invalid_arg "Async.run: destination out of range";
        trace.Trace.messages_sent <- trace.Trace.messages_sent + 1;
        let filtered =
          if is_faulty.(src) then
            adversary ~round:!step ~src ~dst (Some m)
          else Some m
        in
        match filtered with
        | None ->
            if tr then
              Obs.Tracer.instant ~track:src ~lclock:!step "adv.drop"
                [ ("dst", Obs.Tracer.Int dst) ];
            trace.Trace.messages_dropped <- trace.Trace.messages_dropped + 1
        | Some m' ->
            if is_faulty.(src) && m' != m then begin
              if tr then
                Obs.Tracer.instant ~track:src ~lclock:!step "adv.corrupt"
                  [ ("dst", Obs.Tracer.Int dst) ];
              trace.Trace.messages_corrupted <-
                trace.Trace.messages_corrupted + 1
            end;
            let flow = !flow_ids in
            incr flow_ids;
            if tr then Obs.Tracer.flow_start ~track:src ~lclock:!step ~id:flow "msg";
            if !count = !capacity then grow ();
            !pending.(!count) <- Some { src; dst; msg = m'; born = !step; flow };
            incr count;
            incr live)
      msgs
  in
  Array.iteri (fun src actor -> enqueue ~src (actor.start ())) actors;
  (* Pick the index of the next message to deliver under the policy. *)
  let pick () =
    let first_live () =
      let i = ref 0 in
      while !i < !count && !pending.(!i) = None do
        incr i
      done;
      if !i < !count then Some !i else None
    in
    match policy with
    | Fifo -> first_live ()
    | Random_order _ ->
        let rng = Option.get rng in
        if !live = 0 then None
        else begin
          (* choose uniformly among live entries *)
          let target = Rng.int rng !live in
          let seen = ref 0 and found = ref None and i = ref 0 in
          while !found = None && !i < !count do
            (match !pending.(!i) with
            | Some _ ->
                if !seen = target then found := Some !i;
                incr seen
            | None -> ());
            incr i
          done;
          !found
        end
    | Delay { victims; slack } ->
        (* oldest non-victim message if any; otherwise a victim message
           old enough; otherwise the oldest victim message *)
        let best_normal = ref None and best_victim = ref None in
        for i = 0 to !count - 1 do
          match !pending.(i) with
          | None -> ()
          | Some p ->
              if List.mem p.src victims then begin
                if !best_victim = None then best_victim := Some (i, p)
              end
              else if !best_normal = None then best_normal := Some (i, p)
        done;
        (match (!best_normal, !best_victim) with
        | Some (i, _), Some (j, pv) ->
            if !step - pv.born >= slack then Some j else Some i
        | Some (i, _), None -> Some i
        | None, Some (j, _) -> Some j
        | None, None -> None)
  in
  let quiescent = ref false in
  (* hoisted so the per-delivery pool-occupancy observation costs
     nothing when metrics are off *)
  let obs = Obs.enabled () in
  (try
     while !step < max_steps do
       match pick () with
       | None ->
           quiescent := true;
           raise Exit
       | Some i ->
           let p = Option.get !pending.(i) in
           if obs then Obs.observe "sim.async.pool" !live;
           !pending.(i) <- None;
           decr live;
           (* compact occasionally *)
           if !count > 1024 && 4 * !live < !count then begin
             let fresh = Array.make !capacity None in
             let j = ref 0 in
             for k = 0 to !count - 1 do
               match !pending.(k) with
               | Some _ as e ->
                   fresh.(!j) <- e;
                   incr j
               | None -> ()
             done;
             pending := fresh;
             count := !j
           end;
           (match record with
           | None -> ()
           | Some f ->
               let info =
                 match summarize with None -> "" | Some s -> s p.msg
               in
               f { Trace.step = !step; src = p.src; dst = p.dst; info });
           incr step;
           trace.Trace.steps <- trace.Trace.steps + 1;
           trace.Trace.messages_delivered <-
             trace.Trace.messages_delivered + 1;
           if tr then begin
             let lclock = !step - 1 in
             Obs.Tracer.set_now lclock;
             Obs.Tracer.emit ~track:p.dst ~lclock Obs.Tracer.Begin "deliver"
               [ ("src", Obs.Tracer.Int p.src) ];
             Obs.Tracer.flow_end ~track:p.dst ~lclock ~id:p.flow "msg"
           end;
           let reactions = actors.(p.dst).on_message ~src:p.src p.msg in
           enqueue ~src:p.dst reactions;
           if tr then
             Obs.Tracer.emit ~track:p.dst ~lclock:(!step - 1) Obs.Tracer.End
               "deliver" []
     done
   with Exit -> ());
  Trace.publish ~prefix:"sim.async" trace;
  if Obs.enabled () then Obs.observe "sim.async.steps_per_run" trace.Trace.steps;
  { trace; quiescent = !quiescent }
