type 'msg actor = {
  start : unit -> (int * 'msg) list;
  on_message : src:int -> 'msg -> (int * 'msg) list;
}

type policy =
  | Fifo
  | Random_order of int
  | Delay of { victims : int list; slack : int }

type outcome = { trace : Trace.t; quiescent : bool }

(* An [Async] actor as an engine protocol: per-process state is the
   actor itself; step schedulers deliver singleton batches, so
   [on_receive] unfolds one. *)
let protocol_of_actors actors =
  {
    Protocol.init = (fun ~me -> actors.(me));
    on_start = (fun a -> a.start ());
    on_tick = (fun _ ~time:_ -> []);
    on_receive =
      (fun a ~time:_ batch ->
        List.concat_map (fun (src, m) -> a.on_message ~src m) batch);
    output = (fun _ -> ());
  }

let scheduler_of_policy = function
  | Fifo -> Scheduler.Fifo
  | Random_order seed -> Scheduler.Random seed
  | Delay { victims; slack } -> Scheduler.Delayed { victims; slack }

let outcome_of_engine (o : (_, _) Engine.outcome) =
  { trace = o.Engine.trace; quiescent = o.Engine.stopped = `Quiescent }
