type payload = { value : Vec.t; justification : int list }

type key = int * int (* round, originator *)

type msg =
  | Initial of { key : key; payload : payload }
  | Echo of { key : key; payload : payload }
  | Ready of { key : key; payload : payload }

type report = {
  outputs : Vec.t option array;
  delta_used : float array;
  rounds : int;
  outcome : Async.outcome;
}

let rounds_for_eps ~n ~f ~eps ~initial_spread =
  if eps <= 0. then invalid_arg "Algo_async.rounds_for_eps: eps must be > 0";
  if f = 0 then 1
  else begin
    let gamma = float_of_int f /. float_of_int (n - f) in
    let rec go r spread =
      if spread <= eps || r >= 60 then r else go (r + 1) (spread *. gamma)
    in
    go 1 initial_spread
  end

let payload_compare a b =
  let c = Vec.compare_lex a.value b.value in
  if c <> 0 then c else compare a.justification b.justification

(* Reliable-broadcast bookkeeping for one (round, originator) instance. *)
type rb_inst = {
  mutable echoed : bool;
  mutable readied : bool;
  mutable rb_delivered : bool;
  mutable echoes : (payload * int) list;  (* (payload, sender) *)
  mutable readies : (payload * int) list;
}

type proc = {
  me : int;
  n : int;
  f : int;
  total_rounds : int;
  greedy : bool;
      (** Byzantine-but-verifiable: picks the admissible justification
          set whose value is farthest from the crowd, instead of the
          canonical one. Receivers still verify it — this is the
          strongest behaviour the verification layer permits. *)
  validity : Problem.validity;
  rb : (key, rb_inst) Hashtbl.t;
  verified : (key, Vec.t) Hashtbl.t;
  mutable pending : (key * payload) list;  (* delivered, not yet verified *)
  mutable my_round : int;  (* last round index broadcast *)
  mutable decided : Vec.t option;
  mutable delta_used : float;
}

let rb_instance p k =
  match Hashtbl.find_opt p.rb k with
  | Some i -> i
  | None ->
      let i =
        {
          echoed = false;
          readied = false;
          rb_delivered = false;
          echoes = [];
          readies = [];
        }
      in
      Hashtbl.add p.rb k i;
      i

let count_matching payload entries =
  (* distinct senders vouching for exactly this payload *)
  List.length
    (List.sort_uniq compare
       (List.filter_map
          (fun (pl, s) -> if payload_compare pl payload = 0 then Some s else None)
          entries))

(* The deterministic combination rule of Definition 12, shared by the
   sender (to compute) and every receiver (to verify). Memoized: all
   verifiers of the same (round, justified values) recompute the same
   thing. *)
let make_combine ~validity ~f =
  let cache : (string, (Vec.t * float) option) Hashtbl.t = Hashtbl.create 64 in
  fun ~round (vals : Vec.t list) ->
    if round >= 2 then Some (Vec.centroid vals, 0.)
    else begin
      let digest = Marshal.to_string (round, vals) [] in
      match Hashtbl.find_opt cache digest with
      | Some r -> r
      | None ->
          let r = Algo_exact.choose_output ~validity ~f vals in
          Hashtbl.add cache digest r;
          r
    end

type adversary =
  [ `Obedient
  | `Silent
  | `Garbage
  | `Skew of float
  | `Greedy
  | `Equivocate of float ]

let protocol (inst : Problem.instance) ~validity ~rounds
    ?(adversary = `Obedient) () =
  let { Problem.n; f; inputs; faulty; _ } = inst in
  if rounds < 1 then invalid_arg "Algo_async.run: need rounds >= 1";
  if n < (3 * f) + 1 then invalid_arg "Algo_async.run: requires n >= 3f + 1";
  let combine = make_combine ~validity ~f in
  let echo_quorum = ((n + f) / 2) + 1 in
  let ready_amplify = f + 1 in
  let deliver_quorum = (2 * f) + 1 in
  let everyone = List.init n (fun i -> i) in
  let to_all m = List.map (fun dst -> (dst, m)) everyone in

  (* Can (round, payload) be verified from p's verified table right now?
     Returns [Some (Ok value)] (valid), [Some (Error ())] (provably
     bogus), or [None] (prerequisites still missing). *)
  let try_verify p ((t, _q), payload) =
    if t = 0 then
      (* any input claim is legitimate *)
      if payload.justification = [] then Some (Ok payload.value)
      else Some (Error ())
    else begin
      let just = payload.justification in
      let sorted = List.sort_uniq compare just in
      if
        List.length just <> n - f
        || List.length sorted <> n - f
        || List.exists (fun j -> j < 0 || j >= n) sorted
      then Some (Error ())
      else begin
        let prereqs =
          List.map (fun j -> Hashtbl.find_opt p.verified (t - 1, j)) sorted
        in
        if List.exists Option.is_none prereqs then None
        else begin
          let vals = List.map Option.get prereqs in
          match combine ~round:t vals with
          | Some (expected, _) when Vec.equal ~eps:1e-9 expected payload.value
            ->
              Some (Ok payload.value)
          | Some _ | None -> Some (Error ())
        end
      end
    end
  in

  (* Progress: broadcast the next round's value / decide, as long as
     enough verified values of the current round exist. Returns sends. *)
  let rec try_advance p =
    if p.decided <> None || p.my_round >= p.total_rounds then []
    else begin
      let r = p.my_round in
      let avail =
        List.filter_map
          (fun q ->
            Option.map (fun v -> (q, v)) (Hashtbl.find_opt p.verified (r, q)))
          everyone
      in
      if List.length avail < n - f then []
      else begin
        let pick_canonical () = List.filteri (fun i _ -> i < n - f) avail in
        let used =
          if not p.greedy then pick_canonical ()
          else begin
            (* the farthest admissible choice from the crowd's mean *)
            let mean = Vec.centroid (List.map snd avail) in
            let candidates =
              Multiset.choose_indices (List.length avail) (n - f)
            in
            let score idxs =
              let sel = List.map (List.nth avail) idxs in
              match combine ~round:(r + 1) (List.map snd sel) with
              | Some (v, _) -> Some (Vec.dist2 v mean, sel)
              | None -> None
            in
            match List.filter_map score candidates with
            | [] -> pick_canonical ()
            | scored ->
                snd
                  (List.fold_left
                     (fun (bs, bsel) (sc, sel) ->
                       if sc > bs then (sc, sel) else (bs, bsel))
                     (List.hd scored) (List.tl scored))
          end
        in
        let just = List.map fst used in
        let vals = List.map snd used in
        match combine ~round:(r + 1) vals with
        | None -> [] (* required region empty: cannot proceed *)
        | Some (next, delta) ->
            if r + 1 = 1 then p.delta_used <- delta;
            if r + 1 = p.total_rounds then begin
              p.decided <- Some next;
              []
            end
            else begin
              p.my_round <- r + 1;
              let payload = { value = next; justification = just } in
              to_all (Initial { key = (r + 1, p.me); payload })
              @ try_advance p
            end
      end
    end
  in

  let drain_pending p =
    let sends = ref [] in
    let progress = ref true in
    while !progress do
      progress := false;
      let still = ref [] in
      List.iter
        (fun entry ->
          match try_verify p entry with
          | None -> still := entry :: !still
          | Some (Error ()) -> ()
          | Some (Ok value) ->
              let (t, q), _ = entry in
              if not (Hashtbl.mem p.verified (t, q)) then begin
                Hashtbl.add p.verified (t, q) value;
                progress := true
              end)
        p.pending;
      p.pending <- List.rev !still;
      if !progress then sends := !sends @ try_advance p
    done;
    !sends
  in

  let on_rb_delivery p key payload =
    p.pending <- (key, payload) :: p.pending;
    drain_pending p
  in

  let handle p ~src msg =
    match msg with
    | Initial { key = (_, originator) as key; payload } ->
        if src <> originator then []
        else begin
          let i = rb_instance p key in
          if i.echoed then []
          else begin
            i.echoed <- true;
            to_all (Echo { key; payload })
          end
        end
    | Echo { key; payload } ->
        let i = rb_instance p key in
        i.echoes <- (payload, src) :: i.echoes;
        if (not i.readied) && count_matching payload i.echoes >= echo_quorum
        then begin
          i.readied <- true;
          to_all (Ready { key; payload })
        end
        else []
    | Ready { key; payload } ->
        let i = rb_instance p key in
        i.readies <- (payload, src) :: i.readies;
        let c = count_matching payload i.readies in
        let out =
          if (not i.readied) && c >= ready_amplify then begin
            i.readied <- true;
            to_all (Ready { key; payload })
          end
          else []
        in
        if (not i.rb_delivered) && c >= deliver_quorum then begin
          i.rb_delivered <- true;
          out @ on_rb_delivery p key payload
        end
        else out
  in
  (* [`Silent] faulty processes run inert protocol hooks, exactly like
     the inert actors the session used to install. *)
  let silent me = adversary = `Silent && List.mem me faulty in
  {
    Protocol.init =
      (fun ~me ->
        {
          me;
          n;
          f;
          total_rounds = rounds;
          greedy = (adversary = `Greedy && List.mem me faulty);
          validity;
          rb = Hashtbl.create 97;
          verified = Hashtbl.create 97;
          pending = [];
          my_round = 0;
          decided = None;
          delta_used = 0.;
        });
    on_start =
      (fun p ->
        if silent p.me then []
        else begin
          let payload = { value = inputs.(p.me); justification = [] } in
          to_all (Initial { key = (0, p.me); payload })
        end);
    on_tick = (fun _ ~time:_ -> []);
    on_receive =
      (fun p ~time:_ batch ->
        if silent p.me then []
        else List.concat_map (fun (src, m) -> handle p ~src m) batch);
    output = (fun p -> p.decided);
  }

let net_adversary (inst : Problem.instance) adversary =
  let d = inst.Problem.d in
  match adversary with
  | `Obedient | `Silent | `Greedy -> Adversary.honest
  | `Garbage ->
      fun ~round:_ ~src ~dst:_ m ->
        (* corrupt own round >= 1 values: verification will reject *)
        Option.map
          (function
            | Initial { key = (t, o); payload } when o = src && t >= 1 ->
                Initial
                  {
                    key = (t, o);
                    payload =
                      {
                        payload with
                        value =
                          Vec.add (Vec.scale 3. payload.value) (Vec.ones d);
                      };
                  }
            | other -> other)
          m
  | `Skew s ->
      fun ~round:_ ~src ~dst:_ m ->
        Option.map
          (function
            | Initial { key = (0, o); payload } when o = src ->
                Initial
                  {
                    key = (0, o);
                    payload = { payload with value = Vec.scale s payload.value };
                  }
            | other -> other)
          m
  | `Equivocate s ->
      (* a different round-0 input claim per destination: the classic
         attack Bracha's echo/ready quorums must neutralize *)
      fun ~round:_ ~src ~dst m ->
        Option.map
          (function
            | Initial { key = (0, o); payload } when o = src ->
                Initial
                  {
                    key = (0, o);
                    payload =
                      {
                        payload with
                        value =
                          Vec.scale
                            (1. +. (s *. float_of_int dst))
                            payload.value;
                      };
                  }
            | other -> other)
          m

type session = {
  s_procs : proc array;
  s_actors : msg Async.actor array;
  s_adversary : msg Adversary.t;
  s_rounds : int;
}

let session (inst : Problem.instance) ~validity ~rounds
    ?(adversary = `Obedient) () =
  let p = protocol inst ~validity ~rounds ~adversary () in
  let procs = Array.init inst.Problem.n (fun me -> p.Protocol.init ~me) in
  let actors =
    Array.init inst.Problem.n (fun me ->
        {
          Async.start = (fun () -> p.Protocol.on_start procs.(me));
          on_message =
            (fun ~src m ->
              p.Protocol.on_receive procs.(me) ~time:0 [ (src, m) ]);
        })
  in
  {
    s_procs = procs;
    s_actors = actors;
    s_adversary = net_adversary inst adversary;
    s_rounds = rounds;
  }

let session_actors s = s.s_actors
let session_adversary s = s.s_adversary
let session_outputs s = Array.map (fun p -> p.decided) s.s_procs

let summarize = function
  | Initial { key = t, o; _ } -> Printf.sprintf "Initial(r%d,o%d)" t o
  | Echo { key = t, o; _ } -> Printf.sprintf "Echo(r%d,o%d)" t o
  | Ready { key = t, o; _ } -> Printf.sprintf "Ready(r%d,o%d)" t o

let run (inst : Problem.instance) ~validity ~rounds ?policy ?adversary
    ?max_steps ?fault () =
  let s = session inst ~validity ~rounds ?adversary () in
  let outcome =
    Async.outcome_of_engine
      (Engine.run
         ~faults:
           (Fault.overlay ~faulty:inst.Problem.faulty s.s_adversary fault)
         ~obs_prefix:"sim.async" ~err:"Algo_async.run" ~n:inst.Problem.n
         ~states:s.s_actors
         ~protocol:(Async.protocol_of_actors s.s_actors)
         ~scheduler:
           (Async.scheduler_of_policy (Option.value policy ~default:Async.Fifo))
         ~limit:(Option.value max_steps ~default:200_000) ())
  in
  {
    outputs = session_outputs s;
    delta_used = Array.map (fun p -> p.delta_used) s.s_procs;
    rounds = s.s_rounds;
    outcome;
  }
