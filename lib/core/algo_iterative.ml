type report = {
  outputs : Vec.t array;
  spread_history : float list;
  trace : Trace.t;
}

let spread values =
  let arr = Array.of_list values in
  let m = ref 0. in
  Array.iteri
    (fun i u ->
      Array.iteri
        (fun j v -> if j > i then m := Float.max !m (Vec.dist_inf u v))
        arr)
    arr;
  !m

let run (inst : Problem.instance) ~rounds ?adversary ?fault () =
  let { Problem.n; f; d; inputs; faulty } = inst in
  if rounds < 0 then invalid_arg "Algo_iterative.run: negative rounds";
  if n < ((d + 1) * f) + 1 then
    invalid_arg "Algo_iterative.run: requires n >= (d+1)f + 1";
  let values = Array.map Vec.copy inputs in
  let honest p = not (List.mem p faulty) in
  let honest_values () =
    List.filter_map
      (fun p -> if honest p then Some values.(p) else None)
      (List.init n Fun.id)
  in
  let history = ref [ spread (honest_values ()) ] in
  let everyone = List.init n (fun i -> i) in
  let actors =
    Array.init n (fun me ->
        {
          Sync.send =
            (fun ~round:_ ->
              List.map (fun dst -> (dst, Vec.copy values.(me))) everyone);
          recv =
            (fun ~round:_ batch ->
              (* Use exactly what arrived (>= n - f values when faulty
                 processes stay silent). The safe point exists whenever
                 at least (d+1)f + 1 values arrive (Tverberg); with
                 n >= (d+2)f + 1 that holds even under crashes, which is
                 why the iterative family needs the larger bound. When
                 the region is empty the process holds its value (safe:
                 validity is preserved; progress resumes when enough
                 values arrive). *)
              let received = List.map snd batch in
              if List.length received >= ((d + 1) * f) + 1 then
                match Tverberg.gamma_point ~f received with
                | Some safe -> values.(me) <- Vec.lerp 0.5 values.(me) safe
                | None -> ()
              else ())
        })
  in
  (* run one round at a time so we can record the honest spread *)
  let run_round =
    match fault with
    | None -> fun _r -> Sync.run ~n ~rounds:1 ~actors ~faulty ?adversary ()
    | Some spec ->
        (* The engine restarts its round counter at 0 for each 1-round
           execution, so the spec's adversary (crash times are global
           round numbers) sees the offset-corrected round; the base
           adversary keeps seeing 0, as it always has in this per-round
           loop. The model is built once: omission streams advance
           across rounds instead of restarting. Delay specs shift
           arrivals past each round's 1-round horizon, so here a
           positive delay means the message is lost. *)
        let base = Option.value adversary ~default:Adversary.honest in
        let m = Fault.model ~faulty spec in
        let spec_adv = m.Fault.adversary in
        let protocol = Sync.protocol_of_actors actors in
        fun r ->
          let faults =
            {
              m with
              Fault.adversary =
                (fun ~round ~src ~dst msg ->
                  spec_adv ~round:(r + round) ~src ~dst
                    (base ~round ~src ~dst msg));
            }
          in
          (Engine.run ~faults ~obs_prefix:"sim.sync"
             ~err:"Algo_iterative.run" ~states:actors ~n ~protocol
             ~scheduler:Scheduler.Rounds ~limit:1 ())
            .Engine.trace
  in
  let trace = Trace.create () in
  for r = 0 to rounds - 1 do
    let t = run_round r in
    trace.Trace.rounds <- trace.Trace.rounds + t.Trace.rounds;
    trace.Trace.messages_sent <-
      trace.Trace.messages_sent + t.Trace.messages_sent;
    trace.Trace.messages_delivered <-
      trace.Trace.messages_delivered + t.Trace.messages_delivered;
    trace.Trace.messages_dropped <-
      trace.Trace.messages_dropped + t.Trace.messages_dropped;
    trace.Trace.messages_corrupted <-
      trace.Trace.messages_corrupted + t.Trace.messages_corrupted;
    history := spread (honest_values ()) :: !history
  done;
  { outputs = values; spread_history = List.rev !history; trace }
