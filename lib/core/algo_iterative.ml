type report = {
  outputs : Vec.t array;
  spread_history : float list;
  trace : Trace.t;
}

let spread values =
  let arr = Array.of_list values in
  let m = ref 0. in
  Array.iteri
    (fun i u ->
      Array.iteri
        (fun j v -> if j > i then m := Float.max !m (Vec.dist_inf u v))
        arr)
    arr;
  !m

(* Asynchronous, step-scheduled form of the same iteration: values are
   tagged with their round, and a process advances its round as soon as
   n - f round-[r] values have arrived (it cannot wait for all n — under
   asynchrony f processes may stay silent forever). Early messages from
   processes that are rounds ahead are buffered until this process
   catches up. The final value depends on *which* n - f values arrive
   first, i.e. on the delivery schedule — exactly the nondeterminism
   {!Explore.check} quantifies over. *)
type proc = {
  p_me : int;
  p_n : int;
  p_f : int;
  p_d : int;
  p_rounds : int;
  mutable p_round : int;  (* rounds completed; p_rounds = done *)
  mutable p_value : Vec.t;
  p_inbox : (int * Vec.t) list array;  (* per round: (src, value), newest first *)
  p_targets : int list;  (* closed neighborhood (everyone when complete) *)
  p_quorum : int;  (* round-r values needed to advance *)
}

(* Incomplete graphs change two constants and nothing else: a process
   broadcasts only over its (closed) neighborhood, and its round-advance
   quorum shrinks from [n - f] to [deg(i) + 1 - f] — everything its
   closed neighborhood can deliver when its [f] potentially-faulty
   members stay silent. The sufficient condition checked at
   construction ({!Topology.iterative_feasible}) keeps that quorum at
   least [(d+1)f + 1], so the safe point still exists. A [None] or
   complete topology reproduces the historical constants exactly. *)
let topology_check ~err ~n ~f ~d topology =
  (match topology with
  | Some t when Topology.n t <> n ->
      invalid_arg
        (Printf.sprintf "%s: topology is over %d processes, instance has %d" err
           (Topology.n t) n)
  | _ -> ());
  match topology with
  | Some t when not (Topology.is_complete t) ->
      (match Topology.iterative_feasible t ~f ~d with
      | Ok () -> ()
      | Error msg ->
          invalid_arg (Printf.sprintf "%s: infeasible topology: %s" err msg));
      Some t
  | _ -> None

let closed_neighborhood t me =
  let nbrs = Array.to_list (Topology.neighbors t me) in
  List.sort compare (me :: nbrs)

let protocol ?topology (inst : Problem.instance) ~rounds =
  let { Problem.n; f; d; inputs; _ } = inst in
  if rounds < 0 then invalid_arg "Algo_iterative.protocol: negative rounds";
  if n < ((d + 1) * f) + 1 then
    invalid_arg "Algo_iterative.protocol: requires n >= (d+1)f + 1";
  let topo = topology_check ~err:"Algo_iterative.protocol" ~n ~f ~d topology in
  let everyone = List.init n (fun i -> i) in
  let targets_of me =
    match topo with
    | None -> everyone
    | Some t -> closed_neighborhood t me
  in
  let quorum_of me =
    match topo with None -> n - f | Some t -> Topology.degree t me + 1 - f
  in
  let broadcast p =
    List.map (fun dst -> (dst, (p.p_round, Vec.copy p.p_value))) p.p_targets
  in
  let rec drain p =
    if p.p_round < p.p_rounds then begin
      let arrived = p.p_inbox.(p.p_round) in
      if List.length arrived >= p.p_quorum then begin
        let received = List.map snd arrived in
        (if List.length received >= ((p.p_d + 1) * p.p_f) + 1 then
           match Tverberg.gamma_point ~f:p.p_f received with
           | Some safe -> p.p_value <- Vec.lerp 0.5 p.p_value safe
           | None -> ());
        p.p_round <- p.p_round + 1;
        if p.p_round < p.p_rounds then broadcast p @ drain p else []
      end
      else []
    end
    else []
  in
  {
    Protocol.init =
      (fun ~me ->
        {
          p_me = me;
          p_n = n;
          p_f = f;
          p_d = d;
          p_rounds = rounds;
          p_round = 0;
          p_value = Vec.copy inputs.(me);
          p_inbox = Array.make (max rounds 1) [];
          p_targets = targets_of me;
          p_quorum = quorum_of me;
        });
    on_start = (fun p -> if p.p_rounds > 0 then broadcast p else []);
    on_tick = (fun _ ~time:_ -> []);
    on_receive =
      (fun p ~time:_ batch ->
        List.concat_map
          (fun (src, (r, v)) ->
            if r < 0 || r >= p.p_rounds then []
            else if List.mem_assoc src p.p_inbox.(r) then []
            else begin
              p.p_inbox.(r) <- (src, v) :: p.p_inbox.(r);
              drain p
            end)
          batch);
    output = (fun p -> p.p_value);
  }

let run ?topology (inst : Problem.instance) ~rounds ?adversary ?fault () =
  let { Problem.n; f; d; inputs; faulty } = inst in
  if rounds < 0 then invalid_arg "Algo_iterative.run: negative rounds";
  if n < ((d + 1) * f) + 1 then
    invalid_arg "Algo_iterative.run: requires n >= (d+1)f + 1";
  let topo = topology_check ~err:"Algo_iterative.run" ~n ~f ~d topology in
  let values = Array.map Vec.copy inputs in
  let honest p = not (List.mem p faulty) in
  let honest_values () =
    List.filter_map
      (fun p -> if honest p then Some values.(p) else None)
      (List.init n Fun.id)
  in
  let history = ref [ spread (honest_values ()) ] in
  let everyone = List.init n (fun i -> i) in
  let targets_of me =
    match topo with
    | None -> everyone
    | Some t -> closed_neighborhood t me
  in
  let actors =
    Array.init n (fun me ->
        let targets = targets_of me in
        {
          Sync.send =
            (fun ~round:_ ->
              List.map (fun dst -> (dst, Vec.copy values.(me))) targets);
          recv =
            (fun ~round:_ batch ->
              (* Use exactly what arrived (>= n - f values when faulty
                 processes stay silent). The safe point exists whenever
                 at least (d+1)f + 1 values arrive (Tverberg); with
                 n >= (d+2)f + 1 that holds even under crashes, which is
                 why the iterative family needs the larger bound. When
                 the region is empty the process holds its value (safe:
                 validity is preserved; progress resumes when enough
                 values arrive). *)
              let received = List.map snd batch in
              if List.length received >= ((d + 1) * f) + 1 then
                match Tverberg.gamma_point ~f received with
                | Some safe -> values.(me) <- Vec.lerp 0.5 values.(me) safe
                | None -> ()
              else ())
        })
  in
  (* run one round at a time so we can record the honest spread *)
  let run_round =
    match fault with
    | None ->
        let protocol = Sync.protocol_of_actors actors in
        let faults =
          Fault.overlay ~faulty
            (Option.value adversary ~default:Adversary.honest)
            None
        in
        fun _r ->
          (Engine.run ?topology:topo ~faults ~obs_prefix:"sim.sync"
             ~err:"Algo_iterative.run" ~states:actors ~n ~protocol
             ~scheduler:Scheduler.Rounds ~limit:1 ())
            .Engine.trace
    | Some spec ->
        (* The engine restarts its round counter at 0 for each 1-round
           execution, so the spec's adversary (crash times are global
           round numbers) sees the offset-corrected round; the base
           adversary keeps seeing 0, as it always has in this per-round
           loop. The model is built once: omission streams advance
           across rounds instead of restarting. Delay specs shift
           arrivals past each round's 1-round horizon, so here a
           positive delay means the message is lost. *)
        let base = Option.value adversary ~default:Adversary.honest in
        let m = Fault.model ~faulty spec in
        let spec_adv = m.Fault.adversary in
        let protocol = Sync.protocol_of_actors actors in
        fun r ->
          let faults =
            {
              m with
              Fault.adversary =
                (fun ~round ~src ~dst msg ->
                  spec_adv ~round:(r + round) ~src ~dst
                    (base ~round ~src ~dst msg));
            }
          in
          (Engine.run ?topology:topo ~faults ~obs_prefix:"sim.sync"
             ~err:"Algo_iterative.run" ~states:actors ~n ~protocol
             ~scheduler:Scheduler.Rounds ~limit:1 ())
            .Engine.trace
  in
  let trace = Trace.create () in
  for r = 0 to rounds - 1 do
    let t = run_round r in
    trace.Trace.rounds <- trace.Trace.rounds + t.Trace.rounds;
    trace.Trace.messages_sent <-
      trace.Trace.messages_sent + t.Trace.messages_sent;
    trace.Trace.messages_delivered <-
      trace.Trace.messages_delivered + t.Trace.messages_delivered;
    trace.Trace.messages_dropped <-
      trace.Trace.messages_dropped + t.Trace.messages_dropped;
    trace.Trace.messages_corrupted <-
      trace.Trace.messages_corrupted + t.Trace.messages_corrupted;
    history := spread (honest_values ()) :: !history
  done;
  { outputs = values; spread_history = List.rev !history; trace }
