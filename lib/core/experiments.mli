(** The reproduction suite: one experiment per theorem/claim of the
    paper, plus the regeneration of Table 1 (see DESIGN.md for the
    experiment index and EXPERIMENTS.md for recorded results).

    Every experiment is deterministic (seeded) and returns a {!table}
    whose [all_ok] summarises whether the paper's claim was observed.
    [run_all] executes the whole suite in order. *)

type table = {
  id : string;  (** e.g. "E2" or "table1" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
  all_ok : bool;
}

val ids : string list
(** All experiment ids in execution order. *)

val run : ?seed:int -> ?topology:Topology.spec -> string -> table
(** Run one experiment by id. [topology] is the CLI's [--topology]
    spec: the E23 topology sweep appends it (instantiated at its own
    [n]) as an extra informational row; every other experiment ignores
    it. @raise Invalid_argument on unknown ids. *)

val run_many :
  ?seed:int -> ?jobs:int -> ?topology:Topology.spec -> string list ->
  table list
(** Run a list of experiments, optionally in parallel on the {!Par}
    pool ([jobs] domains; default 1 = sequential). Every experiment
    seeds its own generators from [seed], so the returned tables are
    identical at any [jobs] and come back in request order.
    @raise Invalid_argument on unknown ids. *)

val run_all :
  ?seed:int -> ?jobs:int -> ?topology:Topology.spec -> unit -> table list
(** [run_many] over {!ids}. *)

val print : Format.formatter -> table -> unit
(** Pretty-print with aligned columns, title, notes, and verdict. *)

val to_csv : table -> string
(** The table as CSV (header row first; notes and verdict as trailing
    comment lines) — for downstream plotting. *)
