type table = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
  all_ok : bool;
}

let fmt = Printf.sprintf
let f3 x = fmt "%.3f" x
let f4 x = fmt "%.4f" x
let yn b = if b then "yes" else "NO"

let scaled_corruption d src ~dst ~commander:_ ~path:_ v =
  (* deterministic per-edge lie: scale + shift, different per destination *)
  Vec.axpy (0.25 *. float_of_int ((src + (2 * dst)) mod 5)) (Vec.ones d) v

(* ------------------------------------------------------------------ *)
(* E0: scalar Byzantine consensus baseline (d = 1 / k = 1 reduction)   *)

let e0 ~seed () =
  let rng = Rng.create seed in
  let configs = [ (4, 1); (5, 1); (7, 2) ] in
  let rows =
    List.map
      (fun (n, f) ->
        let trials = 5 in
        let ok = ref true in
        for _ = 1 to trials do
          let inputs = Array.init n (fun _ -> Rng.uniform rng ~lo:0. ~hi:10.) in
          let faulty = [ n - 1 ] in
          let corrupt _src ~dst ~commander:_ ~path:_ v =
            v +. float_of_int dst
          in
          let decisions, _ =
            Scalar_consensus.run ~n ~f ~inputs ~faulty ~corrupt ()
          in
          let honest = List.filter (fun p -> p < n - 1) (List.init n Fun.id) in
          let outs = List.map (fun p -> decisions.(p)) honest in
          let all_equal =
            List.for_all (fun v -> Float.abs (v -. List.hd outs) < 1e-12) outs
          in
          let ins = List.map (fun p -> inputs.(p)) honest in
          let lo = List.fold_left Float.min infinity ins in
          let hi = List.fold_left Float.max neg_infinity ins in
          let valid =
            List.for_all (fun v -> v >= lo -. 1e-12 && v <= hi +. 1e-12) outs
          in
          if not (all_equal && valid) then ok := false
        done;
        ( [ string_of_int n; string_of_int f; string_of_int trials; yn !ok ],
          !ok ))
      configs
  in
  {
    id = "E0";
    title = "Scalar Byzantine consensus baseline (n >= 3f+1; Section 5.3 k=1)";
    header = [ "n"; "f"; "trials"; "agreement+validity" ];
    rows = List.map fst rows;
    notes =
      [
        "OM(f) broadcast of scalar inputs + trimmed-median rule; adversary \
         equivocates per destination.";
      ];
    all_ok = List.for_all snd rows;
  }

(* ------------------------------------------------------------------ *)
(* E1: Theorem 1 — exact BVC at n = (d+1)f+1; stuck at n = (d+1)f      *)

let e1 ~seed () =
  let rng = Rng.create (seed + 1) in
  let suff =
    List.map
      (fun (d, f) ->
        let n = Bounds.exact_bvc_min_n ~d ~f in
        let faulty = List.init f (fun i -> n - 1 - i) in
        let inst = Problem.random_instance rng ~n ~f ~d ~faulty in
        let out =
          Runner.run_sync inst ~validity:Problem.Standard
            ~corrupt:(scaled_corruption d) ()
        in
        let ok = Runner.ok out in
        ( [ string_of_int d; string_of_int f; string_of_int n;
            "sufficiency"; yn ok ],
          ok ))
      [ (2, 1); (3, 1); (2, 2) ]
  in
  let nec =
    (* n = (d+1)f = 4, d = 3, f = 1: a simplex view has empty Gamma, so
       the Standard algorithm cannot decide — the Tverberg-tight
       configuration of Section 8. *)
    let d = 3 and f = 1 in
    let n = 4 in
    let inputs = Rng.simplex_vertices rng ~dim:d in
    let inst = Problem.make ~n ~f ~d ~inputs ~faulty:[] in
    let r = Algo_exact.run inst ~validity:Problem.Standard () in
    let undecided = Array.for_all (fun o -> o = None) r.Algo_exact.outputs in
    ( [ string_of_int d; string_of_int f; string_of_int n;
        "necessity (stuck)"; yn undecided ],
      undecided )
  in
  let rows = suff @ [ nec ] in
  {
    id = "E1";
    title = "Theorem 1: exact BVC solvable iff n >= max(3f+1,(d+1)f+1) (sync)";
    header = [ "d"; "f"; "n"; "direction"; "ok" ];
    rows = List.map fst rows;
    notes =
      [
        "Sufficiency: ALGO with Gamma-point choice under an equivocating \
         adversary.";
        "Necessity: at n = (d+1)f affinely independent inputs make \
         Gamma(S) empty (Tverberg tightness), so no valid output exists.";
      ];
    all_ok = List.for_all snd rows;
  }

(* ------------------------------------------------------------------ *)
(* E2: Theorem 3 necessity — the eps/gamma witness makes Psi(Y) empty  *)

let e2 ~seed:_ () =
  let gamma = 1.0 and eps = 0.5 in
  let rows =
    List.map
      (fun d ->
        let y = Witnesses.thm3_inputs ~d ~gamma ~eps in
        let empty =
          K_hull.feasible_point ~d (K_hull.psi_region ~k:2 ~f:1 y) = None
        in
        (* Observation-level checks on sub-regions, as in the proof. *)
        let region_of dset t = [ (dset, t) ] in
        let except i = List.filteri (fun j _ -> j <> i) y in
        let obs1 =
          (* D = {0,1}, T = Y - {s_{d+1}}: coord 0 >= 0 *)
          match
            K_hull.coord_range ~d (region_of [ 0; 1 ] (except d)) 0
          with
          | Some (lo, _) -> lo >= -1e-7
          | None -> false
        in
        let obs3 =
          (* D = {0,1}, T = Y - {s_1}: coord 0 <= 0 *)
          match K_hull.coord_range ~d (region_of [ 0; 1 ] (except 0)) 0 with
          | Some (_, hi) -> hi <= 1e-7
          | None -> false
        in
        let obs4 =
          (* D = {d-2,d-1}, T = Y - {s_{d+1}}: coord d-1 >= eps *)
          match
            K_hull.coord_range ~d (region_of [ d - 2; d - 1 ] (except d)) (d - 1)
          with
          | Some (lo, _) -> lo >= eps -. 1e-7
          | None -> false
        in
        let ok = empty && obs1 && obs3 && obs4 in
        ( [ string_of_int d; string_of_int (d + 1); yn empty; yn obs1;
            yn obs3; yn obs4; yn ok ],
          ok ))
      [ 3; 4; 5; 6 ]
  in
  {
    id = "E2";
    title =
      "Theorem 3 necessity: witness matrix (gamma=1, eps=0.5) gives empty \
       Psi(Y), k=2, f=1, n=d+1";
    header =
      [ "d"; "n"; "Psi empty"; "obs1 c0>=0"; "obs3 c0<=0"; "obs4 cd>=eps";
        "ok" ];
    rows = List.map fst rows;
    notes =
      [
        "Psi(Y) emptiness certified by joint-LP infeasibility; the three \
         observation columns replay the proof's sub-arguments as \
         coordinate-range LPs.";
      ];
    all_ok = List.for_all snd rows;
  }

(* ------------------------------------------------------------------ *)
(* E3: Theorem 3 sufficiency — k-relaxed exact BVC at n = (d+1)f+1     *)

let e3 ~seed () =
  let rng = Rng.create (seed + 3) in
  let configs = [ (3, 2, 1); (4, 2, 1); (4, 3, 1); (3, 2, 2) ] in
  let rows =
    List.map
      (fun (d, k, f) ->
        let n = Bounds.k_relaxed_exact_min_n ~d ~f ~k in
        let faulty = List.init f (fun i -> i) in
        let inst = Problem.random_instance rng ~n ~f ~d ~faulty in
        let out =
          Runner.run_sync inst
            ~validity:(Problem.K_relaxed k)
            ~corrupt:(scaled_corruption d) ()
        in
        let ok = Runner.ok out in
        ( [ string_of_int d; string_of_int k; string_of_int f;
            string_of_int n; yn ok ],
          ok ))
      configs
  in
  {
    id = "E3";
    title = "Theorem 3 sufficiency: k-relaxed exact BVC at n = (d+1)f+1";
    header = [ "d"; "k"; "f"; "n"; "agreement+validity+termination" ];
    rows = List.map fst rows;
    notes = [ "Output chosen in Psi(S) by joint LP; equivocating adversary." ];
    all_ok = List.for_all snd rows;
  }

(* ------------------------------------------------------------------ *)
(* E4: Theorem 4 necessity — async witness forces 2eps disagreement    *)

let e4 ~seed:_ () =
  let gamma = 1.0 and eps = 0.2 in
  let rows =
    List.map
      (fun d ->
        let y = Witnesses.thm4_inputs ~d ~gamma ~eps in
        let r1 = Witnesses.thm4_psi_region ~k:2 ~observer:0 y in
        let r2 = Witnesses.thm4_psi_region ~k:2 ~observer:1 y in
        match (K_hull.coord_range ~d r1 0, K_hull.coord_range ~d r2 0) with
        | Some (lo1, _), Some (_, hi2) ->
            let sep = lo1 -. hi2 in
            let ok = sep >= (2. *. eps) -. 1e-7 in
            ( [ string_of_int d; string_of_int (d + 2); f3 lo1; f3 hi2;
                f3 sep; f3 (2. *. eps); yn ok ],
              ok )
        | _ ->
            ([ string_of_int d; string_of_int (d + 2); "-"; "-"; "-"; "-";
               "NO" ],
             false))
      [ 3; 4; 5 ]
  in
  {
    id = "E4";
    title =
      "Theorem 4 necessity: at n = d+2 the output regions of processes 1 \
       and 2 are >= 2eps apart (L-inf), violating eps-agreement";
    header =
      [ "d"; "n"; "min c0(Psi1)"; "max c0(Psi2)"; "separation"; "2eps"; "ok" ];
    rows = List.map fst rows;
    notes = [ "Witness: gamma = 1, eps = 0.2 (so 2eps < gamma)." ];
    all_ok = List.for_all snd rows;
  }

(* ------------------------------------------------------------------ *)
(* E5: Theorems 2/4/6 sufficiency — async approximate BVC              *)

let e5 ~seed () =
  let rng = Rng.create (seed + 5) in
  let eps = 0.05 in
  let cases =
    [
      (2, 1, `Skew 8., Async.Random_order 11, "skew/random");
      (2, 1, `Silent, Async.Fifo, "silent/fifo");
      (3, 1, `Garbage, Async.Delay { victims = [ 0 ]; slack = 50 },
       "garbage/delay");
      (3, 1, `Skew 8., Async.Random_order 7, "skew/random");
    ]
  in
  let rows =
    List.map
      (fun (d, f, adversary, policy, label) ->
        let n = Bounds.approx_bvc_min_n ~d ~f in
        let inst = Problem.random_instance rng ~n ~f ~d ~faulty:[ n - 1 ] in
        let out =
          Runner.run_async inst ~validity:Problem.Standard ~eps ~policy
            ~adversary ()
        in
        let ok = Runner.ok out in
        ( [ string_of_int d; string_of_int f; string_of_int n; label; yn ok ],
          ok ))
      cases
  in
  {
    id = "E5";
    title =
      "Theorem 2 sufficiency: async approximate BVC at n = (d+2)f+1 \
       (Verified Averaging, standard validity)";
    header = [ "d"; "f"; "n"; "adversary/scheduler"; "ok" ];
    rows = List.map fst rows;
    notes =
      [
        "eps = 0.05; rounds from the f/(n-f) contraction bound; all three \
         conditions checked.";
      ];
    all_ok = List.for_all snd rows;
  }

(* ------------------------------------------------------------------ *)
(* E6: Theorem 5 necessity — (delta,inf) witness + exact crossover     *)

let e6 ~seed:_ () =
  let x = 1.0 in
  let rows =
    List.map
      (fun d ->
        let threshold = x /. (2. *. float_of_int d) in
        let delta_small = 0.8 *. threshold in
        let y = Witnesses.thm5_inputs ~d ~x ~delta:delta_small in
        let empty_at d_test =
          Delta_hull.inf_region_point ~d
            (Delta_hull.gamma_inf_region ~delta:d_test ~f:1 y)
          = None
        in
        let empty_small = empty_at delta_small in
        let feasible_large = not (empty_at (1.2 *. threshold)) in
        (* bisect the crossover *)
        let lo = ref 0. and hi = ref (2. *. threshold) in
        for _ = 1 to 40 do
          let mid = (!lo +. !hi) /. 2. in
          if empty_at mid then lo := mid else hi := mid
        done;
        let crossover = (!lo +. !hi) /. 2. in
        let ok =
          empty_small && feasible_large
          && Float.abs (crossover -. threshold) < 1e-6
        in
        ( [ string_of_int d; f4 delta_small; yn empty_small;
            f4 crossover; f4 threshold; yn ok ],
          ok ))
      [ 2; 3; 4; 5 ]
  in
  {
    id = "E6";
    title =
      "Theorem 5 necessity: diag(x) witness at n = d+1 is infeasible for \
       delta < x/2d; measured feasibility crossover matches x/2d exactly";
    header =
      [ "d"; "delta tested"; "empty"; "measured crossover"; "x/2d"; "ok" ];
    rows = List.map fst rows;
    notes = [ "x = 1; emptiness is exact LP infeasibility." ];
    all_ok = List.for_all snd rows;
  }

(* ------------------------------------------------------------------ *)
(* E7: Tverberg's theorem and its tightness (Section 8)                *)

let e7 ~seed () =
  let rng = Rng.create (seed + 7) in
  let rows =
    List.map
      (fun (d, f) ->
        let n_ok = ((d + 1) * f) + 1 in
        let trials = 5 in
        let found = ref true in
        for _ = 1 to trials do
          let pts = Rng.cloud rng ~n:n_ok ~dim:d ~lo:0. ~hi:1. in
          if Tverberg.tverberg_point ~f pts = None then found := false
        done;
        let mc = Tverberg.moment_curve_points ~d ~n:(n_ok - 1) in
        let tight = Tverberg.tverberg_point ~f mc = None in
        let ok = !found && tight in
        ( [ string_of_int d; string_of_int f; string_of_int n_ok;
            yn !found; string_of_int (n_ok - 1); yn tight; yn ok ],
          ok ))
      [ (2, 1); (2, 2); (3, 1) ]
  in
  {
    id = "E7";
    title =
      "Tverberg (Thm 7) + tightness: (d+1)f+1 random points always \
       partition; (d+1)f moment-curve points never do";
    header =
      [ "d"; "f"; "n"; "partition found"; "n tight"; "no partition"; "ok" ];
    rows = List.map fst rows;
    notes = [ "Partition search is exhaustive; certificates by LP." ];
    all_ok = List.for_all snd rows;
  }

(* ------------------------------------------------------------------ *)
(* E8: Lemma 13 — delta* of a simplex equals its inradius              *)

let e8 ~seed () =
  let rng = Rng.create (seed + 8) in
  let rows =
    List.map
      (fun d ->
        let trials = 3 in
        let worst = ref 0. in
        let heron_err = ref 0. in
        for _ = 1 to trials do
          let s = Rng.simplex_vertices rng ~dim:d in
          let r_closed, _ = Option.get (Delta_hull.incenter_value s) in
          let r_opt =
            Delta_hull.delta_star ~iters:3000 ~restarts:2 ~force_iterative:true
              ~p:2. ~f:1 s
          in
          let err = Float.abs (r_opt.Delta_hull.value -. r_closed) /. r_closed in
          worst := Float.max !worst err;
          if d = 2 then begin
            match s with
            | [ a; b; c ] ->
                let h = Hull2d.triangle_inradius a b c in
                heron_err :=
                  Float.max !heron_err (Float.abs (h -. r_closed) /. r_closed)
            | _ -> ()
          end
        done;
        let ok = !worst < 5e-3 && (d <> 2 || !heron_err < 1e-9) in
        ( [ string_of_int d; string_of_int trials; fmt "%.2e" !worst;
            (if d = 2 then fmt "%.2e" !heron_err else "-"); yn ok ],
          ok ))
      [ 2; 3; 4; 5 ]
  in
  {
    id = "E8";
    title =
      "Lemma 13: delta*(simplex) = inradius — subgradient optimizer vs \
       closed form (and Heron, d = 2)";
    header = [ "d"; "trials"; "max rel err (optimizer)"; "Heron err"; "ok" ];
    rows = List.map fst rows;
    notes =
      [ "Optimizer forced to ignore the closed form; errors are relative." ];
    all_ok = List.for_all snd rows;
  }

(* ------------------------------------------------------------------ *)
(* Shared: adversarial-faulty-set bound ratio for Theorems 9/12, Conj 1 *)

let worst_ratio ~f ~bound_of s delta_star_value =
  (* max over faulty sets F (|F| = f) of delta* / bound(S \ F) *)
  let arr = Array.of_list s in
  let n = Array.length arr in
  let faulty_sets = Multiset.choose_indices n f in
  List.fold_left
    (fun acc fset ->
      let honest =
        List.filteri (fun i _ -> not (List.mem i fset)) (Array.to_list arr)
      in
      Float.max acc (delta_star_value /. bound_of honest))
    0. faulty_sets

let e9 ~seed () =
  let rng = Rng.create (seed + 9) in
  let rows =
    List.map
      (fun d ->
        let n = d + 1 in
        let trials = 20 in
        let max_r_min = ref 0. and max_r_max = ref 0. in
        for _ = 1 to trials do
          let s = Rng.cloud rng ~n ~dim:d ~lo:0. ~hi:1. in
          let r = Delta_hull.delta_star ~p:2. ~f:1 s in
          let v = r.Delta_hull.value in
          (* bound a: min-edge over ALL of S, halved (Theorem 9 part 1) *)
          let ra = v /. (Bounds.min_edge s /. 2.) in
          (* bound b: max-edge over honest inputs / (n-2), worst faulty *)
          let rb =
            worst_ratio ~f:1
              ~bound_of:(fun honest ->
                Bounds.max_edge honest /. float_of_int (n - 2))
              s v
          in
          max_r_min := Float.max !max_r_min ra;
          max_r_max := Float.max !max_r_max rb
        done;
        let ok = !max_r_min < 1. && !max_r_max < 1. in
        ( [ string_of_int d; string_of_int n; string_of_int trials;
            f3 !max_r_min; f3 !max_r_max; yn ok ],
          ok ))
      [ 3; 4; 5; 6 ]
  in
  {
    id = "E9";
    title =
      "Theorem 9 (f=1, n=d+1): delta* < min-edge/2 and < max-edge+/(n-2), \
       faulty process chosen adversarially";
    header =
      [ "d"; "n"; "trials"; "max delta*/(min-edge/2)";
        "max delta*/(max-edge+/(n-2))"; "ok" ];
    rows = List.map fst rows;
    notes =
      [
        "delta* is exact (incenter closed form / Gamma LP); ratios must \
         stay strictly below 1.";
      ];
    all_ok = List.for_all snd rows;
  }

let e10 ~seed () =
  let rng = Rng.create (seed + 10) in
  let d = 3 and f = 2 in
  let n = (d + 1) * f in
  let trials = 3 in
  let rows =
    List.init trials (fun t ->
        let s = Rng.cloud rng ~n ~dim:d ~lo:0. ~hi:1. in
        let r = Delta_hull.delta_star ~iters:800 ~restarts:2 ~p:2. ~f s in
        let ratio =
          worst_ratio ~f
            ~bound_of:(fun honest ->
              Bounds.max_edge honest /. float_of_int (d - 1))
            s r.Delta_hull.value
        in
        let ok = ratio < 1. in
        ( [ string_of_int (t + 1); string_of_int n; f4 r.Delta_hull.value;
            f3 ratio; yn ok ],
          ok ))
  in
  {
    id = "E10";
    title =
      "Theorem 12 (f=2, d=3, n=(d+1)f=8): delta* < max-edge+/(d-1), \
       faulty pair chosen adversarially";
    header = [ "trial"; "n"; "delta* (upper bd)"; "max ratio"; "ok" ];
    rows = List.map fst rows;
    notes =
      [
        "delta* from the subgradient optimizer is a certified upper \
         bound, which is the direction the theorem needs.";
      ];
    all_ok = List.for_all snd rows;
  }

let e11 ~seed () =
  let rng = Rng.create (seed + 11) in
  let d = 4 and f = 2 in
  let rows =
    List.map
      (fun n ->
        let trials = 3 in
        let maxratio = ref 0. in
        for _ = 1 to trials do
          let s = Rng.cloud rng ~n ~dim:d ~lo:0. ~hi:1. in
          let r = Delta_hull.delta_star ~iters:800 ~restarts:2 ~p:2. ~f s in
          let ratio =
            worst_ratio ~f
              ~bound_of:(fun honest -> Bounds.conj1_bound ~n ~f ~max_edge:(Bounds.max_edge honest))
              s r.Delta_hull.value
          in
          maxratio := Float.max !maxratio ratio
        done;
        let ok = !maxratio < 1. in
        ( [ string_of_int n; string_of_int (n / f); string_of_int trials;
            f3 !maxratio; yn ok ],
          ok ))
      [ 7; 8; 9 ]
  in
  {
    id = "E11";
    title =
      "Conjecture 1 (d=4, f=2, 3f+1 <= n < (d+1)f): delta* < \
       max-edge+/(floor(n/f)-2) — empirical support";
    header = [ "n"; "floor(n/f)"; "trials"; "max ratio"; "ok" ];
    rows = List.map fst rows;
    notes = [ "A conjecture in the paper; we report empirical ratios only." ];
    all_ok = List.for_all snd rows;
  }

let e12 ~seed () =
  let rng = Rng.create (seed + 12) in
  let ps = [ 2.; 3.; Float.infinity ] in
  let rows =
    List.concat_map
      (fun d ->
        let n = d + 1 in
        let s = Rng.cloud rng ~n ~dim:d ~lo:0. ~hi:1. in
        let v2 = (Delta_hull.delta_star ~p:2. ~f:1 s).Delta_hull.value in
        List.map
          (fun p ->
            let vp =
              if p = 2. then v2
              else
                (Delta_hull.delta_star ~eps:1e-6 ~iters:300 ~restarts:1 ~p ~f:1 s)
                  .Delta_hull.value
            in
            let ratio =
              worst_ratio ~f:1
                ~bound_of:(fun honest ->
                  Bounds.holder_factor ~d ~p
                  /. float_of_int (n - 2)
                  *. Bounds.max_edge ~p honest)
                s vp
            in
            let mono = vp <= v2 *. 1.01 +. 1e-6 in
            let ok = ratio < 1. && mono in
            let p_str = if p = Float.infinity then "inf" else fmt "%g" p in
            ( [ string_of_int d; p_str; f4 vp; f4 v2; yn mono; f3 ratio;
                yn ok ],
              ok ))
          ps)
      [ 3; 4 ]
  in
  {
    id = "E12";
    title =
      "Theorem 14 (Lp): delta*_p <= delta*_2 and delta*_p < d^(1/2-1/p) * \
       kappa * max-edge+_p (f=1, n=d+1)";
    header =
      [ "d"; "p"; "delta*_p"; "delta*_2"; "p-monotone"; "max ratio"; "ok" ];
    rows = List.map fst rows;
    notes =
      [ "p = inf via the exact min-max LP; 2 < p < inf via FISTA Lp projections." ];
    all_ok = List.for_all snd rows;
  }

let e13 ~seed () =
  let rng = Rng.create (seed + 13) in
  let d = 4 and f = 1 in
  let eps = 0.05 in
  let rows =
    List.map
      (fun n ->
        let inst = Problem.random_instance rng ~n ~f ~d ~faulty:[ n - 1 ] in
        let out =
          Runner.run_async inst
            ~validity:(Problem.Input_dependent { p = 2. })
            ~eps
            ~policy:(Async.Random_order 17)
            ~adversary:(`Skew 6.) ()
        in
        let honest_inputs = Problem.honest_inputs inst in
        let dist =
          List.fold_left
            (fun a o -> Float.max a (Hull.dist_p ~p:2. honest_inputs o))
            0. out.Runner.honest_outputs
        in
        let kappa =
          match Bounds.kappa2 ~n:(n - f) ~f ~d with
          | `Proved k -> (k, "proved")
          | `Conjectured k -> (k, "conjectured")
        in
        let bound = fst kappa *. Bounds.max_edge honest_inputs in
        let ok = Runner.ok out && dist < bound in
        ( [ string_of_int n; string_of_int (n - f); f4 dist; f4 bound;
            snd kappa; yn (Runner.ok out); yn ok ],
          ok ))
      [ 5; 6 ]
  in
  {
    id = "E13";
    title =
      "Theorem 15 (async, input-dependent delta): validity within \
       kappa(n-f,f,d,2) * max-edge+ plus eps-agreement, below the \
       standard (d+2)f+1 threshold";
    header =
      [ "n"; "n-f"; "max dist to H(N)"; "bound"; "kappa status";
        "run checks"; "ok" ];
    rows = List.map fst rows;
    notes =
      [
        "d = 4, f = 1, so the standard async bound would need n >= 7; the \
         relaxed algorithm runs at n = 5, 6.";
      ];
    all_ok = List.for_all snd rows;
  }

let e14 ~seed:_ () =
  let d = 2 and f = 1 in
  let mk n =
    (* distinct, non-default honest inputs: when equivocation forces a
       majority tie, OM's default (the origin) differs from every honest
       input, so corrupted views are observably different *)
    let inputs =
      List.init n (fun i -> Vec.scale (float_of_int (i + 2)) (Vec.ones d))
    in
    Problem.make ~n ~f ~d ~inputs ~faulty:[ n - 1 ]
  in
  (* The faulty process broadcasts its own input honestly but lies when
     relaying the honest processes' values. At n = 3 each lieutenant then
     faces a 1-vs-1 tie about the other's input and falls back to OM's
     default, so the two honest views — and hence the deterministic
     outputs — split. At n = 4 the honest 2-vs-1 relay majority absorbs
     the same lies and agreement survives. *)
  let corrupt src ~dst ~commander ~path:_ v =
    if commander = src then v
    else Vec.axpy (10. *. float_of_int (dst + 1)) (Vec.ones d) v
  in
  let run n =
    let inst = mk n in
    let out =
      Runner.run_sync inst ~validity:(Problem.Input_dependent { p = 2. })
        ~corrupt ()
    in
    List.assoc "agreement" out.Runner.checks
  in
  let broken = run 3 in
  let fine = run 4 in
  let ok = (not broken.Validity.ok) && fine.Validity.ok in
  {
    id = "E14";
    title =
      "Lemma 10: input-dependent (delta,p)-consensus impossible at n <= \
       3f — equivocation splits n = 3 but not n = 4";
    header = [ "n"; "agreement" ];
    rows =
      [
        [ "3"; (if broken.Validity.ok then "holds (unexpected)" else "violated (as proved)") ];
        [ "4"; (if fine.Validity.ok then "holds" else "VIOLATED (bug)") ];
      ];
    notes =
      [
        "Realizes the three-scenario indistinguishability argument as an \
         execution: the same equivocation strategy that is fatal at n = 3f \
         is absorbed at n = 3f + 1.";
      ];
    all_ok = ok;
  }

(* ------------------------------------------------------------------ *)
(* E15: exact rational re-verification of the LP certificates          *)

let e15 ~seed:_ () =
  let rows = ref [] in
  let record name float_feasible exact_feasible expect_empty =
    let ok =
      float_feasible = exact_feasible && exact_feasible = not expect_empty
    in
    rows :=
      ( [ name;
          (if expect_empty then "empty" else "non-empty");
          yn (not float_feasible = expect_empty);
          yn (not exact_feasible = expect_empty);
          yn ok ],
        ok )
      :: !rows
  in
  (* Theorem 3's Psi(Y): empty for the witness, non-empty for a benign set *)
  List.iter
    (fun d ->
      let y = Witnesses.thm3_inputs ~d ~gamma:1.0 ~eps:0.5 in
      let nvars, free, lp_rows =
        K_hull.region_rows ~d (K_hull.psi_region ~k:2 ~f:1 y)
      in
      let ff, ef = Exact_lp.check_agrees_with_float ~free ~nvars lp_rows in
      record (fmt "Thm3 Psi(Y) d=%d" d) ff ef true)
    [ 3; 4 ];
  let benign =
    [ Vec.of_list [ 0.; 0.; 0. ]; Vec.of_list [ 1.; 0.; 0. ];
      Vec.of_list [ 0.; 1.; 0. ]; Vec.of_list [ 0.; 0.; 1. ];
      Vec.of_list [ 0.25; 0.25; 0.25 ] ]
  in
  let nvars, free, lp_rows =
    K_hull.region_rows ~d:3 (K_hull.psi_region ~k:2 ~f:1 benign)
  in
  let ff, ef = Exact_lp.check_agrees_with_float ~free ~nvars lp_rows in
  record "benign Psi(S) d=3 n=5" ff ef false;
  (* Theorem 5's (delta,inf) region at delta just below and above x/2d.
     0.125 and 2^-3-ish values are exact dyadics, so the crossover check
     is exact. *)
  let d = 4 in
  let x = 1.0 in
  List.iter
    (fun (delta, expect_empty) ->
      let y = Witnesses.thm5_inputs ~d ~x ~delta:0.0625 in
      let nvars, free, lp_rows =
        Delta_hull.inf_region_rows ~d
          (Delta_hull.gamma_inf_region ~delta ~f:1 y)
      in
      let ff, ef = Exact_lp.check_agrees_with_float ~free ~nvars lp_rows in
      record
        (fmt "Thm5 region d=%d delta=%g" d delta)
        ff ef expect_empty)
    [ (0.121, true); (0.125, false) ];
  let rows = List.rev !rows in
  {
    id = "E15";
    title =
      "Exact rational certificates: the impossibility LPs re-decided with        bigint rationals and Bland's rule (no tolerances) agree with the        float solver";
    header = [ "system"; "expected"; "float"; "exact"; "ok" ];
    rows = List.map fst rows;
    notes =
      [
        "Witness entries are dyadic, so the float systems convert to the          exact systems losslessly. At the Theorem 5 threshold delta = x/2d          = 0.125 the region becomes (exactly) non-empty.";
      ];
    all_ok = List.for_all snd rows;
  }

(* ------------------------------------------------------------------ *)
(* E16: iterative BVC convergence series (figure-like artifact)        *)

let e16 ~seed () =
  let rng = Rng.create (seed + 16) in
  let d = 3 and f = 1 in
  let n = ((d + 1) * f) + 1 in
  let inst = Problem.random_instance rng ~n ~f ~d ~faulty:[ n - 1 ] in
  let adversary =
    Adversary.corrupt (fun ~round ~dst v ->
        Vec.axpy (0.3 *. float_of_int ((round + dst) mod 4)) (Vec.ones d) v)
  in
  let rounds = 16 in
  let r = Algo_iterative.run inst ~rounds ~adversary () in
  let hist = Array.of_list r.Algo_iterative.spread_history in
  let monotone = ref true in
  for i = 1 to Array.length hist - 1 do
    if hist.(i) > hist.(i - 1) +. 1e-9 then monotone := false
  done;
  let final = hist.(Array.length hist - 1) in
  let hi = Problem.honest_inputs inst in
  let valid =
    List.for_all
      (fun p -> Hull.dist_p ~p:2. hi r.Algo_iterative.outputs.(p) < 1e-6)
      (Problem.honest_ids inst)
  in
  let ok = !monotone && final < 1e-3 && valid in
  let rows =
    List.filter_map
      (fun i ->
        if i mod 2 = 0 && i < Array.length hist then
          Some [ string_of_int i; fmt "%.6f" hist.(i) ]
        else None)
      (List.init (Array.length hist) Fun.id)
  in
  {
    id = "E16";
    title =
      "Iterative BVC (reference [18] family): honest-value spread per        round under an equivocating adversary (d=3, f=1, n=5)";
    header = [ "round"; "honest spread (L-inf)" ];
    rows;
    notes =
      [
        fmt
          "monotone contraction: %b; final spread %.2e; validity (within            initial honest hull): %b"
          !monotone final valid;
      ];
    all_ok = ok;
  }

(* ------------------------------------------------------------------ *)
(* E17: message complexity scaling (figure-like artifact)              *)

let e17 ~seed:_ () =
  let om_row n f =
    let inputs = Array.init n (fun i -> Vec.make 2 (float_of_int i)) in
    let _, tr =
      Om.broadcast_all ~n ~f ~inputs ~default:(Vec.zero 2)
        ~compare:Vec.compare_lex ()
    in
    (n, f, tr.Trace.messages_delivered)
  in
  let bracha_row n f =
    let inputs = Array.init n (fun i -> Vec.make 2 (float_of_int i)) in
    let _, out = Bracha.broadcast_all ~n ~f ~inputs ~compare:Vec.compare_lex () in
    (n, f, out.Async.trace.Trace.messages_delivered)
  in
  let om = List.map (fun (n, f) -> om_row n f) [ (4, 1); (7, 1); (7, 2); (10, 2) ] in
  let rb = List.map (fun (n, f) -> bracha_row n f) [ (4, 1); (7, 2); (10, 3) ] in
  (* sanity of the shapes: OM grows superlinearly with f; Bracha ~ n^3 *)
  let om_4_1 = (fun (_, _, m) -> m) (List.nth om 0) in
  let om_7_1 = (fun (_, _, m) -> m) (List.nth om 1) in
  let om_7_2 = (fun (_, _, m) -> m) (List.nth om 2) in
  let ok = om_7_2 > om_7_1 && om_7_1 > om_4_1 in
  {
    id = "E17";
    title =
      "Message complexity of the broadcast substrates (batched messages        delivered, all-to-all broadcast)";
    header = [ "protocol"; "n"; "f"; "messages" ];
    rows =
      List.map
        (fun (n, f, m) ->
          [ "OM(f)"; string_of_int n; string_of_int f; string_of_int m ])
        om
      @ List.map
          (fun (n, f, m) ->
            [ "Bracha"; string_of_int n; string_of_int f; string_of_int m ])
          rb;
    notes =
      [
        "OM(f) relays along paths (O(n^f) entries batched per edge);          Bracha is O(n^2) per instance, n instances.";
      ];
    all_ok = ok;
  }

(* ------------------------------------------------------------------ *)
(* E18: convex hull consensus (references [15, 16])                    *)

let e18 ~seed () =
  let rng = Rng.create (seed + 18) in
  let rows =
    List.map
      (fun trial ->
        let n = 5 and f = 1 and d = 2 in
        let inst = Problem.random_instance rng ~n ~f ~d ~faulty:[ trial mod n ] in
        let corrupt _src ~dst ~commander:_ ~path:_ v =
          Vec.axpy (0.4 *. float_of_int (dst + 1)) (Vec.ones d) v
        in
        let r = Hull_consensus.run inst ~corrupt () in
        let honest = Problem.honest_ids inst in
        let polys =
          List.filter_map (fun p -> r.Hull_consensus.outputs.(p)) honest
        in
        let decided = List.length polys = List.length honest in
        let agree =
          match polys with
          | [] -> false
          | p0 :: rest -> List.for_all (Polygon.equal p0) rest
        in
        let valid =
          let hh = Polygon.of_points (Problem.honest_inputs inst) in
          List.for_all (fun p -> Polygon.subset p hh) polys
        in
        let area = match polys with [] -> 0. | p :: _ -> Polygon.area p in
        let ok = decided && agree && valid in
        ( [ string_of_int (trial + 1); yn decided; yn agree; yn valid;
            fmt "%.4f" area; yn ok ],
          ok ))
      [ 0; 1; 2 ]
  in
  {
    id = "E18";
    title =
      "Convex Hull Consensus (refs [15,16], d=2): all honest processes        agree on the identical polytope Gamma(S), inside the honest hull";
    header = [ "trial"; "terminated"; "agree"; "valid"; "area"; "ok" ];
    rows = List.map fst rows;
    notes =
      [ "Output polytopes computed exactly by convex polygon clipping." ];
    all_ok = List.for_all snd rows;
  }

(* ------------------------------------------------------------------ *)
(* E19: the strongest verifiable async adversary (greedy selection)    *)

let e19 ~seed () =
  let rng = Rng.create (seed + 19) in
  let d = 3 and f = 1 and n = 6 in
  let eps = 0.05 in
  let inst = Problem.random_instance rng ~n ~f ~d ~faulty:[ n - 1 ] in
  let hi = Problem.honest_inputs inst in
  let spread0 = Bounds.max_edge ~p:Float.infinity hi in
  let rounds =
    Algo_async.rounds_for_eps ~n ~f ~eps
      ~initial_spread:((2. *. Bounds.max_edge hi) +. spread0)
  in
  let run adversary =
    let r =
      Algo_async.run inst ~validity:Problem.Standard ~rounds
        ~policy:(Async.Random_order (seed + 1)) ~adversary ()
    in
    let outs =
      List.filter_map
        (fun p -> r.Algo_async.outputs.(p))
        (Problem.honest_ids inst)
    in
    let agree = (Validity.eps_agreement ~eps outs).Validity.ok in
    let valid = (Validity.standard_validity ~honest_inputs:hi outs).Validity.ok in
    (List.length outs, agree, valid)
  in
  let rows =
    List.map
      (fun (label, adv) ->
        let decided, agree, valid = run adv in
        let ok = decided = n - 1 && agree && valid in
        ( [ label; string_of_int decided; yn agree; yn valid; yn ok ], ok ))
      [ ("obedient", `Obedient); ("greedy", `Greedy); ("skew 10x", `Skew 10.) ]
  in
  {
    id = "E19";
    title =
      "Strongest verifiable async adversary: greedy justification        selection cannot break eps-agreement or validity (Verified        Averaging's safety net)";
    header = [ "adversary"; "decided"; "eps-agreement"; "validity"; "ok" ];
    rows = List.map fst rows;
    notes =
      [
        "The greedy faulty process always broadcasts the admissible value          farthest from the crowd; verification forces it to stay within          the protocol's reachable set, so the contraction argument still          applies.";
      ];
    all_ok = List.for_all snd rows;
  }

(* ------------------------------------------------------------------ *)
(* E20: ratio distributions per Table 1 regime (figure-like artifact)  *)

let e20 ~seed () =
  let regimes =
    [ (5, 1, 4, 10); (4, 1, 3, 10); (5, 1, 5, 10); (8, 2, 3, 3) ]
  in
  let rows =
    List.map
      (fun (n, f, d, trials) ->
        let regime = Sweeps.regime_of ~n ~f ~d in
        let iters = if f = 1 then 1200 else 500 in
        let s = Sweeps.measure ~iters ~trials ~seed:(seed + n + d) regime in
        let ok = s.Stats.max < 1. in
        ( [ fmt "n=%d f=%d d=%d" n f d; string_of_int trials;
            f3 s.Stats.mean; f3 s.Stats.p50; f3 s.Stats.p90; f3 s.Stats.max;
            yn ok ],
          ok ))
      regimes
  in
  {
    id = "E20";
    title =
      "delta*/bound ratio distributions per Table 1 regime (uniform        random inputs, faulty set adversarial per sample)";
    header = [ "regime"; "trials"; "mean"; "p50"; "p90"; "max"; "< 1" ];
    rows = List.map fst rows;
    notes =
      [
        "Distributional view of the Table 1 reproduction: the proved          bounds leave substantial headroom on random inputs.";
      ];
    all_ok = List.for_all snd rows;
  }

(* ------------------------------------------------------------------ *)
(* E21: adversarial input search — how tight are the bounds?           *)

let e21 ~seed () =
  let rows =
    List.map
      (fun (n, f, d, steps) ->
        let regime = Sweeps.regime_of ~n ~f ~d in
        let iters = if f = 1 then 1200 else 400 in
        let best, _ =
          Sweeps.adversarial_search ~iters ~steps ~seed:(seed + (2 * n) + d)
            regime
        in
        let ok = best < 1. in
        ( [ fmt "n=%d f=%d d=%d" n f d; string_of_int steps; f3 best; yn ok ],
          ok ))
      [ (4, 1, 3, 60); (5, 1, 4, 60); (8, 2, 3, 12) ]
  in
  {
    id = "E21";
    title =
      "Adversarial input search (hill climbing on the input        configuration): the worst ratio found still respects the bound";
    header = [ "regime"; "search steps"; "best ratio found"; "< 1" ];
    rows = List.map fst rows;
    notes =
      [
        "Hill climbing pushes delta*/bound well above the random-input          p90 (e.g. near-equilateral simplices for Theorem 9) but, as          proved, never reaches 1.";
      ];
    all_ok = List.for_all snd rows;
  }

(* ------------------------------------------------------------------ *)
(* E22: the asynchronous k = 1 reduction is dimension-independent      *)

let e22 ~seed () =
  let rng = Rng.create (seed + 22) in
  let eps = 0.05 in
  let rows =
    List.map
      (fun d ->
        let n = 4 and f = 1 in
        let inst = Problem.random_instance rng ~n ~f ~d ~faulty:[ 3 ] in
        let r =
          Algo_k1_async.run inst ~eps
            ~policy:(Async.Random_order (seed + d))
            ~adversary:(`Skew 6.) ()
        in
        let honest = Problem.honest_ids inst in
        let outs =
          List.filter_map (fun p -> r.Algo_k1_async.outputs.(p)) honest
        in
        let agree = (Validity.eps_agreement ~eps outs).Validity.ok in
        let valid =
          (Validity.k_relaxed_validity ~k:1
             ~honest_inputs:(Problem.honest_inputs inst)
             outs)
            .Validity.ok
        in
        let ok = List.length outs = 3 && agree && valid in
        ( [ string_of_int d; string_of_int n; yn agree; yn valid;
            string_of_int r.Algo_k1_async.messages; yn ok ],
          ok ))
      [ 2; 5; 9 ]
  in
  {
    id = "E22";
    title =
      "Section 5.3 asynchronous k=1 reduction: 1-relaxed approximate BVC        at n = 3f+1 = 4 regardless of dimension (per-coordinate async        scalar consensus)";
    header = [ "d"; "n"; "eps-agreement"; "1-relaxed validity";
               "messages"; "ok" ];
    rows = List.map fst rows;
    notes =
      [
        "The standard vector bound would require n >= (d+2)f+1 — already          11 processes at d = 9; the k=1 relaxation runs at 4.";
      ];
    all_ok = List.for_all snd rows;
  }

(* ------------------------------------------------------------------ *)
(* E23: first-class topology — iterative BVC on incomplete graphs      *)

let e23 ?topology ~seed () =
  let n = 16 and f = 1 and d = 2 in
  let rounds = 8 in
  let rng = Rng.create (seed + 223) in
  let inst = Problem.random_instance rng ~n ~f ~d ~faulty:[ n - 1 ] in
  let hi = Problem.honest_inputs inst in
  let honest = Problem.honest_ids inst in
  let adversary =
    Adversary.corrupt (fun ~round ~dst v ->
        Vec.axpy (0.25 *. float_of_int ((round + dst) mod 3)) (Vec.ones d) v)
  in
  (* The standard sweep, plus the user's --topology spec when it names a
     non-complete graph (informational extra row). ring:1 violates the
     arXiv:1307.2483 condition at (f, d) = (1, 2) — its row passes iff
     construction refuses loudly. *)
  let graphs =
    [
      ("complete", Topology.complete n);
      ("regular:7:1", Topology.random_regular ~seed:1 ~degree:7 n);
      ("ring:3", Topology.ring ~k:3 n);
      ("ring:1", Topology.ring ~k:1 n);
    ]
    @
    match topology with
    | None | Some Topology.Complete -> []
    | Some spec -> (
        match Topology.instantiate spec ~n with
        | Ok t -> [ (Topology.spec_to_string spec, t) ]
        | Error _ -> [])
  in
  let msgs = Hashtbl.create 8 in
  let rows =
    List.map
      (fun (name, t) ->
        let deg = Topology.degree t 0 in
        match Topology.iterative_feasible t ~f ~d with
        | Error _ ->
            let refused =
              match Algo_iterative.run ~topology:t inst ~rounds ~adversary ()
              with
              | _ -> false
              | exception Invalid_argument _ -> true
            in
            ( [ name; string_of_int deg; "no"; "-"; "-"; yn refused ],
              refused )
        | Ok () ->
            let topo = if Topology.is_complete t then None else Some t in
            let r =
              Algo_iterative.run ?topology:topo inst ~rounds ~adversary ()
            in
            let hist = Array.of_list r.Algo_iterative.spread_history in
            let final = hist.(Array.length hist - 1) in
            let monotone = ref true in
            for i = 1 to Array.length hist - 1 do
              if hist.(i) > hist.(i - 1) +. 1e-9 then monotone := false
            done;
            let valid =
              List.for_all
                (fun p ->
                  Hull.dist_p ~p:2. hi r.Algo_iterative.outputs.(p) < 1e-6)
                honest
            in
            let sent = r.Algo_iterative.trace.Trace.messages_sent in
            Hashtbl.replace msgs name sent;
            let ok = !monotone && final < hist.(0) && valid in
            ( [ name; string_of_int deg; "yes"; string_of_int sent;
                fmt "%.4f" final; yn ok ],
              ok ))
      graphs
  in
  let cheaper =
    match
      (Hashtbl.find_opt msgs "ring:3", Hashtbl.find_opt msgs "complete")
    with
    | Some r, Some c -> r < c
    | _ -> false
  in
  {
    id = "E23";
    title =
      "First-class topology: iterative BVC on incomplete communication        graphs (n=16, f=1, d=2) — convergence where the arXiv:1307.2483        condition holds, loud rejection where it fails";
    header = [ "graph"; "deg(0)"; "feasible"; "messages"; "final spread";
               "ok" ];
    rows = List.map fst rows;
    notes =
      [
        fmt
          "Messages follow the graph degree (O(n d) per round, not           O(n^2)); ring:3 cheaper than complete: %b. Validity: every           honest output stays in the honest-input hull on every feasible           graph."
          cheaper;
      ];
    all_ok = List.for_all snd rows && cheaper;
  }

(* ------------------------------------------------------------------ *)
(* E24: Byzantine convex consensus (optimal polytope agreement)        *)

let e24 ~seed () =
  let rng = Rng.create (seed + 224) in
  let corrupt _faulty ~dst ~commander:_ ~path:_ v =
    Vec.axpy (0.1 *. float_of_int ((dst mod 3) + 1)) (Vec.ones (Vec.dim v)) v
  in
  let rows =
    List.map
      (fun (n, f, d) ->
        let inst = Problem.random_instance rng ~n ~f ~d ~faulty:[ n - 1 ] in
        let hi = Problem.honest_inputs inst in
        let honest = Problem.honest_ids inst in
        let r = Algo_bcc.run inst ~corrupt () in
        let decisions = List.map (fun p -> r.Algo_bcc.outputs.(p)) honest in
        let decided = List.filter_map Fun.id decisions in
        let all_decided = List.length decided = List.length honest in
        let agree =
          match decided with
          | [] -> false
          | dec0 :: rest -> List.for_all (fun dec -> dec = dec0) rest
        in
        let valid =
          List.for_all
            (fun (dec : Algo_bcc.decision) ->
              Hull.mem hi dec.Algo_bcc.point
              && List.for_all (Hull.mem hi) dec.Algo_bcc.verts)
            decided
        in
        let exact_as_claimed =
          List.for_all
            (fun (dec : Algo_bcc.decision) -> dec.Algo_bcc.exact = (d <= 2))
            decided
        in
        let ok = all_decided && agree && valid && exact_as_claimed in
        ( [ fmt "n=%d f=%d d=%d" n f d; yn all_decided; yn agree; yn valid;
            (if d <= 2 then "exact" else "inner approx"); yn ok ],
          ok ))
      [ (4, 1, 1); (5, 1, 2); (7, 2, 1); (8, 1, 3) ]
  in
  {
    id = "E24";
    title =
      "Byzantine convex consensus (arXiv:1307.1332 family): honest        processes agree on a polytope inside the honest-input hull,        despite an equivocating faulty commander";
    header = [ "instance"; "decided"; "agreement"; "validity";
               "polytope"; "ok" ];
    rows = List.map fst rows;
    notes =
      [
        "Gamma(S) is computed exactly at d <= 2 (trimmed interval /           subset-hull polygon intersection) and as a certified inner           approximation at d >= 3; agreement follows from identical           post-broadcast views, validity from the subset excluding the           faulty commanders.";
      ];
    all_ok = List.for_all snd rows;
  }

(* ------------------------------------------------------------------ *)
(* Table 1: the paper's summary of upper bounds, with measured ratios  *)

let table1 ~seed () =
  let rng = Rng.create (seed + 100) in
  let measure ~d ~f ~n ~trials ~iters ~bound_of =
    let maxratio = ref 0. in
    for _ = 1 to trials do
      let s = Rng.cloud rng ~n ~dim:d ~lo:0. ~hi:1. in
      let r = Delta_hull.delta_star ~iters ~restarts:2 ~p:2. ~f s in
      maxratio :=
        Float.max !maxratio (worst_ratio ~f ~bound_of s r.Delta_hull.value)
    done;
    !maxratio
  in
  (* cell 1: f = 1, n = (d+1)f — Theorem 9 (full min(.,.) bound) *)
  let d1 = 4 in
  let c1 =
    measure ~d:d1 ~f:1 ~n:(d1 + 1) ~trials:12 ~iters:2000
      ~bound_of:(fun honest ->
        (* min-edge part of Thm 9 uses ALL of S; using honest-only is
           only larger, so bounding by the honest pair is conservative
           in the other direction — take the theorem's exact form: the
           caller passes honest inputs, so use max-edge+/(n-2) and add
           the min-edge/2 part over honest inputs (>= over S). *)
        Float.min
          (Bounds.min_edge honest /. 2.)
          (Bounds.max_edge honest /. float_of_int (d1 + 1 - 2)))
  in
  (* cell 2: f >= 2, n = (d+1)f — Theorem 12 *)
  let d2 = 3 and f2 = 2 in
  let c2 =
    measure ~d:d2 ~f:f2 ~n:((d2 + 1) * f2) ~trials:2 ~iters:700
      ~bound_of:(fun honest ->
        Bounds.max_edge honest /. float_of_int (d2 - 1))
  in
  (* cell 3: f = 1, 3f+1 <= n < (d+1)f — Conjecture 1 *)
  let d3 = 5 in
  let c3 =
    measure ~d:d3 ~f:1 ~n:5 ~trials:6 ~iters:1500 ~bound_of:(fun honest ->
        Bounds.conj1_bound ~n:5 ~f:1 ~max_edge:(Bounds.max_edge honest))
  in
  (* cell 4: f >= 2, 3f+1 <= n < (d+1)f — Conjecture 1 *)
  let d4 = 4 and f4' = 2 in
  let c4 =
    measure ~d:d4 ~f:f4' ~n:8 ~trials:2 ~iters:700 ~bound_of:(fun honest ->
        Bounds.conj1_bound ~n:8 ~f:f4' ~max_edge:(Bounds.max_edge honest))
  in
  let ok = c1 < 1. && c2 < 1. && c3 < 1. && c4 < 1. in
  {
    id = "table1";
    title =
      "Table 1 (Section 9.2.3): summary of input-dependent delta upper \
       bounds — paper formula vs measured max delta*/bound ratio";
    header = [ "regime"; "paper bound"; "status"; "measured max ratio"; "< 1" ];
    rows =
      [
        [ fmt "f=1, n=(d+1)f (d=%d)" d1;
          "min(min-edge/2, max-edge+/(n-2))"; "Theorem 9"; f3 c1;
          yn (c1 < 1.) ];
        [ fmt "f>=2, n=(d+1)f (d=%d,f=%d)" d2 f2; "max-edge+/(d-1)";
          "Theorem 12"; f3 c2; yn (c2 < 1.) ];
        [ fmt "f=1, 3f+1<=n<(d+1)f (d=%d,n=5)" d3;
          "max-edge+/(floor(n/f)-2)"; "Conjecture 1"; f3 c3; yn (c3 < 1.) ];
        [ fmt "f>=2, 3f+1<=n<(d+1)f (d=%d,f=%d,n=8)" d4 f4';
          "max-edge+/(floor(n/f)-2)"; "Conjecture 1"; f3 c4; yn (c4 < 1.) ];
      ];
    notes =
      [
        "Ratios are measured over uniform random inputs with the faulty \
         set chosen adversarially per sample; the paper proves (or \
         conjectures) every ratio < 1.";
      ];
    all_ok = ok;
  }

(* ------------------------------------------------------------------ *)

(* [?topology] is the CLI's --topology spec: E23 appends it to its
   graph sweep as an extra row; every other experiment ignores it, so
   the default tables stay pure functions of (id, seed). *)
let registry ?topology () : (string * (seed:int -> unit -> table)) list =
  [
    ("E0", e0); ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5);
    ("E6", e6); ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10);
    ("E11", e11); ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15);
    ("E16", e16); ("E17", e17); ("E18", e18); ("E19", e19); ("E20", e20);
    ("E21", e21); ("E22", e22); ("E23", e23 ?topology); ("E24", e24);
    ("table1", table1);
  ]

let ids = List.map fst (registry ())

(* One experiment, as a timed (and, when a trace buffer is installed, a
   spanned) unit of work. *)
let run_one ~seed id f =
  let timed () = Obs.time ("experiment." ^ id) (fun () -> f ~seed ()) in
  if Obs.Tracer.active () then
    Obs.trace_span
      ~args:[ ("id", Obs.Tracer.Str id) ]
      ("experiment." ^ id) timed
  else timed ()

let run ?(seed = 42) ?topology id =
  match List.assoc_opt id (registry ?topology ()) with
  | Some f -> run_one ~seed id f
  | None -> invalid_arg (fmt "Experiments.run: unknown id %S" id)

(* Every experiment builds its own [Rng.create (seed + _)] streams, so
   the tables are pure functions of (id, seed) and the suite can fan out
   over the Par pool; results come back in request order regardless of
   [jobs]. *)
let run_many ?(seed = 42) ?(jobs = 1) ?topology wanted =
  let reg = registry ?topology () in
  let fs =
    List.map
      (fun id ->
        match List.assoc_opt id reg with
        | Some f -> (id, f)
        | None -> invalid_arg (fmt "Experiments.run_many: unknown id %S" id))
      wanted
  in
  if not (Obs.Tracer.active ()) then
    Par.map_list ~jobs (fun (id, f) -> run_one ~seed id f) fs
  else begin
    (* Tracing: each task records into its own buffer (the worker
       domains have no tracer installed), and the coordinator splices
       the per-task events back in request order — so the combined
       trace is identical at any [jobs], like the tables themselves. *)
    let outcomes =
      Par.map_list ~jobs
        (fun (id, f) -> Obs.Tracer.collect (fun () -> run_one ~seed id f))
        fs
    in
    List.map
      (fun (table, events) ->
        Obs.Tracer.absorb events;
        table)
      outcomes
  end

let run_all ?seed ?jobs ?topology () = run_many ?seed ?jobs ?topology ids

let print ppf t =
  let widths =
    List.fold_left
      (fun acc row ->
        List.map2 (fun w cell -> Int.max w (String.length cell)) acc row)
      (List.map String.length t.header)
      t.rows
  in
  let pad cell w = cell ^ String.make (w - String.length cell) ' ' in
  let line row =
    String.concat "  " (List.map2 pad row widths)
  in
  Format.fprintf ppf "@.== %s: %s@." t.id t.title;
  Format.fprintf ppf "   %s@." (line t.header);
  Format.fprintf ppf "   %s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Format.fprintf ppf "   %s@." (line row)) t.rows;
  List.iter (fun n -> Format.fprintf ppf "   note: %s@." n) t.notes;
  Format.fprintf ppf "   verdict: %s@."
    (if t.all_ok then "REPRODUCED" else "MISMATCH")

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let buf = Buffer.create 256 in
  let row cells =
    Buffer.add_string buf (String.concat "," (List.map csv_escape cells));
    Buffer.add_char buf '\n'
  in
  row t.header;
  List.iter row t.rows;
  List.iter (fun n -> Buffer.add_string buf ("# " ^ n ^ "\n")) t.notes;
  Buffer.add_string buf
    ("# verdict: " ^ (if t.all_ok then "REPRODUCED" else "MISMATCH") ^ "\n");
  Buffer.contents buf
