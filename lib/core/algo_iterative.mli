(** Iterative Byzantine vector consensus (the algorithm family of the
    paper's reference [18], Vaidya 2014, specialized to complete
    graphs): no Byzantine broadcast, no message relaying — each round
    every process sends its current value directly to everyone and moves
    toward a *safe point* of what it received.

    The safe point is a point of [Gamma(received)] — the intersection of
    the hulls of all (n-f)-subsets — which is guaranteed to lie in the
    convex hull of the values received from non-faulty processes no
    matter which f values were fabricated. Moving halfway toward it
    therefore preserves validity inductively, and contraction of the
    honest values' spread follows empirically (reference [18] proves
    sufficient conditions; this simulator measures the contraction —
    see experiment E16).

    Requires [n >= (d+1)f + 1] so the safe point exists when every
    process sends (Tverberg); tolerating *silent* faulty processes needs
    [n >= (d+2)f + 1] (only [n - f] values arrive, and the safe point
    must still exist among them) — the same gap between the exact and
    iterative/asynchronous bounds the literature reports. A process
    whose safe region is momentarily empty holds its value, which
    preserves validity. *)

type report = {
  outputs : Vec.t array;  (** value of each process after the last round *)
  spread_history : float list;
      (** max pairwise L-inf distance among honest values, per round
          (index 0 = initial inputs) *)
  trace : Trace.t;
}

type proc
(** Per-process state of the asynchronous form. *)

val protocol :
  Problem.instance ->
  rounds:int ->
  (proc, int * Vec.t, Vec.t) Protocol.t
(** The same iteration as an asynchronous engine protocol: values travel
    as [(round, value)] messages, and a process moves to round [r + 1]
    as soon as [n - f] round-[r] values have arrived (under asynchrony
    it cannot wait for all [n]); messages from rounds it has not reached
    are buffered. The output is the process's value after [rounds]
    advances. Because the update uses whichever [n - f] values arrive
    first, the outcome depends on the delivery schedule — the
    nondeterminism {!Explore.check} and {!Explore.run_protocol} quantify
    over. Raises [Invalid_argument] unless [rounds >= 0] and
    [n >= (d+1)f + 1]. *)

val run :
  Problem.instance ->
  rounds:int ->
  ?adversary:Vec.t Adversary.t ->
  ?fault:Fault.spec ->
  unit ->
  report
(** Executes [rounds] iterations over the synchronous simulator.
    The adversary intercepts the faulty processes' value messages
    (equivocation per destination allowed, as in iterative algorithms'
    threat model). [fault] overlays a crash / omission / delay
    {!Fault.spec} on the faulty set: crash times count global rounds and
    omission streams span the whole execution, even though each round
    runs as its own engine execution (to record the honest spread
    between rounds) — which also means a [Delay] spec loses any message
    delayed past its own round. *)
