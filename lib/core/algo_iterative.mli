(** Iterative Byzantine vector consensus (the algorithm family of the
    paper's reference [18], Vaidya 2014): no Byzantine broadcast, no
    message relaying — each round every process sends its current value
    directly to its neighbors and moves toward a *safe point* of what
    it received. On the default complete graph "its neighbors" is
    everyone; with [?topology] set the algorithm runs on an incomplete
    graph in the style of Vaidya-Garg (arXiv:1307.2483): broadcasts
    cover only the closed neighborhood, the asynchronous round-advance
    quorum shrinks to [deg(i) + 1 - f], and the checkable sufficient
    condition {!Topology.iterative_feasible} (every closed neighborhood
    at least [(d+2)f + 1] strong, connectivity surviving any [f]
    removals) is enforced at construction — an infeasible graph fails
    loudly with [Invalid_argument] instead of silently failing to
    converge.

    The safe point is a point of [Gamma(received)] — the intersection of
    the hulls of all (n-f)-subsets — which is guaranteed to lie in the
    convex hull of the values received from non-faulty processes no
    matter which f values were fabricated. Moving halfway toward it
    therefore preserves validity inductively, and contraction of the
    honest values' spread follows empirically (reference [18] proves
    sufficient conditions; this simulator measures the contraction —
    see experiment E16).

    Requires [n >= (d+1)f + 1] so the safe point exists when every
    process sends (Tverberg); tolerating *silent* faulty processes needs
    [n >= (d+2)f + 1] (only [n - f] values arrive, and the safe point
    must still exist among them) — the same gap between the exact and
    iterative/asynchronous bounds the literature reports. A process
    whose safe region is momentarily empty holds its value, which
    preserves validity. *)

type report = {
  outputs : Vec.t array;  (** value of each process after the last round *)
  spread_history : float list;
      (** max pairwise L-inf distance among honest values, per round
          (index 0 = initial inputs) *)
  trace : Trace.t;
}

type proc
(** Per-process state of the asynchronous form. *)

val protocol :
  ?topology:Topology.t ->
  Problem.instance ->
  rounds:int ->
  (proc, int * Vec.t, Vec.t) Protocol.t
(** The same iteration as an asynchronous engine protocol: values travel
    as [(round, value)] messages, and a process moves to round [r + 1]
    as soon as a quorum of round-[r] values has arrived — [n - f] on the
    complete graph (under asynchrony it cannot wait for all [n]),
    [deg(i) + 1 - f] under an incomplete [?topology]; messages from
    rounds it has not reached are buffered. The output is the process's
    value after [rounds] advances. Because the update uses whichever
    quorum arrives first, the outcome depends on the delivery schedule —
    the nondeterminism {!Explore.check} and {!Explore.run_protocol}
    quantify over. Raises [Invalid_argument] unless [rounds >= 0],
    [n >= (d+1)f + 1], and any non-complete [topology] is over exactly
    [n] processes and passes {!Topology.iterative_feasible}. *)

val run :
  ?topology:Topology.t ->
  Problem.instance ->
  rounds:int ->
  ?adversary:Vec.t Adversary.t ->
  ?fault:Fault.spec ->
  unit ->
  report
(** Executes [rounds] iterations over the synchronous simulator, on the
    complete graph or, with [?topology], an incomplete one (validated
    exactly as {!protocol}; the per-round engine executions also filter
    by the graph, so an adversary cannot fabricate on absent edges).
    The adversary intercepts the faulty processes' value messages
    (equivocation per destination allowed, as in iterative algorithms'
    threat model). [fault] overlays a crash / omission / delay
    {!Fault.spec} on the faulty set: crash times count global rounds and
    omission streams span the whole execution, even though each round
    runs as its own engine execution (to record the honest spread
    between rounds) — which also means a [Delay] spec loses any message
    delayed past its own round. *)
