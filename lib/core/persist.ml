type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

(* ---------------- writer ---------------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
      (* JSON has no encoding for non-finite floats; %.17g would emit
         nan/inf, which our own parser (and every other) rejects. Write
         null instead — the read-back is lossy for these values only. *)
      if not (Float.is_finite x) then Buffer.add_string buf "null"
      else if Float.is_integer x && Float.abs x < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" x)
      else Buffer.add_string buf (Printf.sprintf "%.17g" x)
  | String s -> Buffer.add_string buf (escape_string s)
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape_string k);
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ---------------- parser ---------------- *)

exception Parse_error of string

let of_string s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
          (if !pos >= len then fail "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               (* Four hex digits exactly (int_of_string "0x…" would
                  also accept '_' and signs). *)
               let hex4 () =
                 if !pos + 4 > len then fail "bad \\u escape";
                 let v = ref 0 in
                 for _ = 1 to 4 do
                   let d =
                     match s.[!pos] with
                     | '0' .. '9' as c -> Char.code c - Char.code '0'
                     | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
                     | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
                     | _ -> fail "bad \\u escape"
                   in
                   v := (!v * 16) + d;
                   advance ()
                 done;
                 !v
               in
               let code = hex4 () in
               (* Code points above the BMP arrive as UTF-16 surrogate
                  pairs: a high surrogate must be followed by a \u low
                  surrogate, and a lone surrogate of either kind is not
                  a valid scalar value (emitting it raw would produce
                  invalid UTF-8). *)
               let code =
                 if code >= 0xD800 && code <= 0xDBFF then begin
                   if
                     !pos + 1 < len
                     && s.[!pos] = '\\'
                     && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let low = hex4 () in
                     if low >= 0xDC00 && low <= 0xDFFF then
                       0x10000
                       + ((code - 0xD800) lsl 10)
                       + (low - 0xDC00)
                     else fail "high surrogate not followed by low surrogate"
                   end
                   else fail "lone high surrogate"
                 end
                 else if code >= 0xDC00 && code <= 0xDFFF then
                   fail "lone low surrogate"
                 else code
               in
               (* encode the scalar value as UTF-8 *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else if code < 0x10000 then begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
                 Buffer.add_char buf
                   (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
                 Buffer.add_char buf
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
           | _ -> fail "bad escape");
          go ()
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.contains text '.' || String.contains text 'e'
       || String.contains text 'E'
    then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ---------------- instances ---------------- *)

let vec_to_json v = List (List.map (fun x -> Float x) (Vec.to_list v))

let vec_of_json = function
  | List items ->
      let floats =
        List.map
          (function
            | Float f -> Ok f
            | Int i -> Ok (float_of_int i)
            | _ -> Error "vector entries must be numbers")
          items
      in
      if List.exists Result.is_error floats then
        Error "vector entries must be numbers"
      else Ok (Vec.of_list (List.map Result.get_ok floats))
  | _ -> Error "vector must be an array"

let instance_to_json (inst : Problem.instance) =
  Obj
    [
      ("n", Int inst.Problem.n);
      ("f", Int inst.Problem.f);
      ("d", Int inst.Problem.d);
      ( "inputs",
        List (Array.to_list (Array.map vec_to_json inst.Problem.inputs)) );
      ("faulty", List (List.map (fun p -> Int p) inst.Problem.faulty));
    ]

let instance_of_json j =
  let ( let* ) = Result.bind in
  let int_field name =
    match member name j with
    | Some (Int i) -> Ok i
    | _ -> Error (Printf.sprintf "missing integer field %S" name)
  in
  let* n = int_field "n" in
  let* f = int_field "f" in
  let* d = int_field "d" in
  let* inputs =
    match member "inputs" j with
    | Some (List items) ->
        let vs = List.map vec_of_json items in
        if List.exists Result.is_error vs then Error "bad input vector"
        else Ok (List.map Result.get_ok vs)
    | _ -> Error "missing inputs array"
  in
  let* faulty =
    match member "faulty" j with
    | Some (List items) ->
        let ids =
          List.map (function Int i -> Ok i | _ -> Error "bad id") items
        in
        if List.exists Result.is_error ids then Error "bad faulty id"
        else Ok (List.map Result.get_ok ids)
    | _ -> Error "missing faulty array"
  in
  try Ok (Problem.make ~n ~f ~d ~inputs ~faulty)
  with Invalid_argument msg -> Error msg

let save_instance path inst =
  let oc = open_out path in
  output_string oc (to_string (instance_to_json inst));
  output_char oc '\n';
  close_out oc

let load_instance path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  match of_string (String.trim contents) with
  | Error e -> Error e
  | Ok j -> instance_of_json j
