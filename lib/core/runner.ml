type outcome = {
  instance : Problem.instance;
  honest_outputs : Vec.t list;
  decided : bool list;
  delta_used : float;
  checks : (string * Validity.check) list;
  messages : int;
}

let ok t = Validity.all_ok (List.map snd t.checks)

(* The validity check matching the problem's validity condition. For
   input-dependent delta the allowance is the paper's bound (Table 1)
   when (n, f, d) is in its domain, and otherwise the check degrades to
   "within the measured delta actually used" (reported, not asserted). *)
let validity_check ~system ~validity ~(inst : Problem.instance) ~delta_used
    honest_outputs =
  let honest_inputs = Problem.honest_inputs inst in
  match validity with
  | Problem.Standard -> Validity.standard_validity ~honest_inputs honest_outputs
  | Problem.K_relaxed k ->
      Validity.k_relaxed_validity ~k ~honest_inputs honest_outputs
  | Problem.Delta_p { delta; p } ->
      Validity.delta_p_validity ~delta ~p ~honest_inputs honest_outputs
  | Problem.Input_dependent { p } -> (
      let eff_n =
        match system with
        | Problem.Synchronous -> inst.Problem.n
        | Problem.Asynchronous -> inst.Problem.n - inst.Problem.f
      in
      let kappa =
        if
          inst.Problem.f >= 1
          && eff_n >= (3 * inst.Problem.f) + 1
          && eff_n <= (inst.Problem.d + 1) * inst.Problem.f
        then
          match Bounds.kappa2 ~n:eff_n ~f:inst.Problem.f ~d:inst.Problem.d with
          | `Proved k | `Conjectured k ->
              Some (Bounds.holder_factor ~d:inst.Problem.d ~p:(Float.max p 2.) *. k)
        else None
      in
      match kappa with
      | Some kappa ->
          Validity.input_dependent_validity ~p ~kappa ~honest_inputs
            honest_outputs
      | None ->
          Validity.delta_p_validity ~delta:(delta_used +. 1e-9) ~p ~honest_inputs
            honest_outputs)

let assemble ~system ~validity ~inst ~outputs ~delta_used ~messages ~eps =
  let honest = Problem.honest_ids inst in
  let honest_outputs = List.filter_map (fun p -> outputs.(p)) honest in
  let decided = List.map (fun p -> outputs.(p) <> None) honest in
  let agreement_check =
    match system with
    | Problem.Synchronous -> ("agreement", Validity.agreement honest_outputs)
    | Problem.Asynchronous ->
        ("eps-agreement", Validity.eps_agreement ~eps honest_outputs)
  in
  let checks =
    [
      agreement_check;
      ( "validity",
        validity_check ~system ~validity ~inst ~delta_used honest_outputs );
      ("termination", Validity.termination ~decided);
    ]
  in
  { instance = inst; honest_outputs; decided; delta_used; checks; messages }

let run_sync inst ~validity ?corrupt ?fault () =
  let r = Algo_exact.run inst ~validity ?corrupt ?fault () in
  let honest = Problem.honest_ids inst in
  let delta_used =
    List.fold_left
      (fun acc p -> Float.max acc r.Algo_exact.delta_used.(p))
      0. honest
  in
  assemble ~system:Problem.Synchronous ~validity ~inst
    ~outputs:r.Algo_exact.outputs ~delta_used
    ~messages:r.Algo_exact.trace.Trace.messages_delivered ~eps:0.

let run_async inst ~validity ~eps ?policy ?adversary ?rounds ?fault () =
  let honest_inputs = Problem.honest_inputs inst in
  let rounds =
    match rounds with
    | Some r -> r
    | None ->
        let base_spread =
          match honest_inputs with
          | [] | [ _ ] -> 1.
          | pts ->
              let arr = Array.of_list pts in
              let m = ref 0. in
              Array.iteri
                (fun i u ->
                  Array.iteri
                    (fun j v -> if j > i then m := Float.max !m (Vec.dist_inf u v))
                    arr)
                arr;
              !m
        in
        let allowance =
          match honest_inputs with
          | _ :: _ :: _ -> 2. *. Bounds.max_edge honest_inputs
          | _ -> 0.
        in
        Algo_async.rounds_for_eps ~n:inst.Problem.n ~f:inst.Problem.f ~eps
          ~initial_spread:(base_spread +. allowance +. 1e-6)
  in
  let r = Algo_async.run inst ~validity ~rounds ?policy ?adversary ?fault () in
  let honest = Problem.honest_ids inst in
  let delta_used =
    List.fold_left
      (fun acc p -> Float.max acc r.Algo_async.delta_used.(p))
      0. honest
  in
  assemble ~system:Problem.Asynchronous ~validity ~inst
    ~outputs:r.Algo_async.outputs ~delta_used
    ~messages:r.Algo_async.outcome.Async.trace.Trace.messages_delivered ~eps

let pp ppf t =
  Format.fprintf ppf "@[<v>n=%d f=%d d=%d msgs=%d delta=%.4g@,%a@]"
    t.instance.Problem.n t.instance.Problem.f t.instance.Problem.d t.messages
    t.delta_used
    (Format.pp_print_list (fun ppf (name, c) ->
         Format.fprintf ppf "%-14s %a" name Validity.pp c))
    t.checks
