let schema = "rbvc-metrics/1"

let hist_to_json (h : Obs.hist) =
  let buckets =
    Persist.List
      (List.map
         (fun (lo, c) -> Persist.List [ Persist.Int lo; Persist.Int c ])
         h.Obs.buckets)
  in
  Persist.Obj
    (("count", Persist.Int h.Obs.count)
     :: ("sum", Persist.Int h.Obs.sum)
     ::
     (match (h.Obs.min, h.Obs.max) with
     | Some mn, Some mx ->
         [
           ("min", Persist.Int mn);
           ("max", Persist.Int mx);
           ("buckets", buckets);
         ]
     | _ -> [ ("buckets", buckets) ]))

let span_to_json ~timings (sp : Obs.span) =
  Persist.Obj
    (("calls", Persist.Int sp.Obs.calls)
     ::
     (if timings then [ ("seconds", Persist.Float sp.Obs.seconds) ] else []))

let to_json ?(timings = false) (snap : Obs.snapshot) =
  Persist.Obj
    [
      ("schema", Persist.String schema);
      ( "counters",
        Persist.Obj
          (List.map (fun (k, v) -> (k, Persist.Int v)) snap.Obs.counters) );
      ( "gauges",
        Persist.Obj (List.map (fun (k, v) -> (k, Persist.Int v)) snap.Obs.gauges)
      );
      ( "histograms",
        Persist.Obj (List.map (fun (k, h) -> (k, hist_to_json h)) snap.Obs.hists)
      );
      ( "spans",
        Persist.Obj
          (List.map (fun (k, sp) -> (k, span_to_json ~timings sp)) snap.Obs.spans)
      );
    ]

let write ?timings path snap =
  let oc = open_out path in
  output_string oc (Persist.to_string (to_json ?timings snap));
  output_char oc '\n';
  close_out oc
