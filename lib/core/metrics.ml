let schema = "rbvc-metrics/1"

let hist_to_json (h : Obs.hist) =
  let buckets =
    Persist.List
      (List.map
         (fun (lo, c) -> Persist.List [ Persist.Int lo; Persist.Int c ])
         h.Obs.buckets)
  in
  Persist.Obj
    (("count", Persist.Int h.Obs.count)
     :: ("sum", Persist.Int h.Obs.sum)
     ::
     (match (h.Obs.min, h.Obs.max) with
     | Some mn, Some mx ->
         [
           ("min", Persist.Int mn);
           ("max", Persist.Int mx);
           ("buckets", buckets);
         ]
     | _ -> [ ("buckets", buckets) ]))

(* Quantile estimate from an explicit-boundary histogram: find the
   bucket where the cumulative count crosses [q * count] and
   interpolate linearly inside it (overflow bucket capped at the
   observed max). Clamped to the observed min/max. *)
let quantile (w : Obs.wall_hist) q =
  if w.Obs.w_count = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int w.Obs.w_count in
    let counts = w.Obs.w_counts in
    let nb = Array.length counts in
    let i = ref 0 and cum = ref 0 in
    while
      !i < nb - 1 && float_of_int (!cum + counts.(!i)) < target
    do
      cum := !cum + counts.(!i);
      incr i
    done;
    let c = counts.(!i) in
    let lower = if !i = 0 then 0. else w.Obs.w_bounds.(!i - 1) in
    let upper =
      if !i < Array.length w.Obs.w_bounds then w.Obs.w_bounds.(!i)
      else match w.Obs.w_max with Some m -> m | None -> lower
    in
    let frac =
      if c = 0 then 1.
      else Float.max 0. (Float.min 1. ((target -. float_of_int !cum) /. float_of_int c))
    in
    let v = lower +. ((upper -. lower) *. frac) in
    let v = match w.Obs.w_min with Some m when v < m -> m | _ -> v in
    let v = match w.Obs.w_max with Some m when v > m -> m | _ -> v in
    v
  end

let wall_hist_to_json (w : Obs.wall_hist) =
  let floats a = Persist.List (List.map (fun f -> Persist.Float f) a) in
  Persist.Obj
    (("count", Persist.Int w.Obs.w_count)
     :: ("sum", Persist.Float w.Obs.w_sum)
     ::
     ((match (w.Obs.w_min, w.Obs.w_max) with
      | Some mn, Some mx ->
          [ ("min", Persist.Float mn); ("max", Persist.Float mx) ]
      | _ -> [])
     @ [
         ("bounds", floats (Array.to_list w.Obs.w_bounds));
         ( "counts",
           Persist.List
             (List.map (fun c -> Persist.Int c) (Array.to_list w.Obs.w_counts))
         );
         ("p50", Persist.Float (quantile w 0.5));
         ("p95", Persist.Float (quantile w 0.95));
         ("p99", Persist.Float (quantile w 0.99));
       ]))

let span_to_json ~timings (sp : Obs.span) =
  Persist.Obj
    (("calls", Persist.Int sp.Obs.calls)
     ::
     (if timings then [ ("seconds", Persist.Float sp.Obs.seconds) ] else []))

let to_json ?(timings = false) (snap : Obs.snapshot) =
  Persist.Obj
    ([
      ("schema", Persist.String schema);
      ( "counters",
        Persist.Obj
          (List.map (fun (k, v) -> (k, Persist.Int v)) snap.Obs.counters) );
      ( "gauges",
        Persist.Obj (List.map (fun (k, v) -> (k, Persist.Int v)) snap.Obs.gauges)
      );
      ( "histograms",
        Persist.Obj (List.map (fun (k, h) -> (k, hist_to_json h)) snap.Obs.hists)
      );
    ]
    @ (if timings && snap.Obs.wall_hists <> [] then
         [
           ( "wall_histograms",
             Persist.Obj
               (List.map
                  (fun (k, w) -> (k, wall_hist_to_json w))
                  snap.Obs.wall_hists) );
         ]
       else [])
    @ [
      ( "spans",
        Persist.Obj
          (List.map (fun (k, sp) -> (k, span_to_json ~timings sp)) snap.Obs.spans)
      );
    ])

let write ?timings path snap =
  let oc = open_out path in
  output_string oc (Persist.to_string (to_json ?timings snap));
  output_char oc '\n';
  close_out oc

(* ---------------- Prometheus text exposition ---------------- *)

let mangle name =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
        | _ -> '_')
      name
  in
  "rbvc_" ^ mapped

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let to_prometheus (snap : Obs.snapshot) =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun (name, v) ->
      let m = mangle name ^ "_total" in
      line "# TYPE %s counter" m;
      line "%s %d" m v)
    snap.Obs.counters;
  List.iter
    (fun (name, v) ->
      let m = mangle name in
      line "# TYPE %s gauge" m;
      line "%s %d" m v)
    snap.Obs.gauges;
  (* power-of-two int histograms: bucket keyed by lower bound [lo]
     covers [lo .. 2*lo-1], so the cumulative [le] edge is [2*lo-1]. *)
  List.iter
    (fun (name, (h : Obs.hist)) ->
      let m = mangle name in
      line "# TYPE %s histogram" m;
      let cum = ref 0 in
      List.iter
        (fun (lo, c) ->
          cum := !cum + c;
          let le = if lo = 0 then 0 else (2 * lo) - 1 in
          line "%s_bucket{le=\"%d\"} %d" m le !cum)
        h.Obs.buckets;
      line "%s_bucket{le=\"+Inf\"} %d" m h.Obs.count;
      line "%s_sum %d" m h.Obs.sum;
      line "%s_count %d" m h.Obs.count)
    snap.Obs.hists;
  List.iter
    (fun (name, (w : Obs.wall_hist)) ->
      let m = mangle name ^ "_seconds" in
      line "# TYPE %s histogram" m;
      let cum = ref 0 in
      Array.iteri
        (fun i bound ->
          cum := !cum + w.Obs.w_counts.(i);
          line "%s_bucket{le=\"%s\"} %d" m (prom_float bound) !cum)
        w.Obs.w_bounds;
      line "%s_bucket{le=\"+Inf\"} %d" m w.Obs.w_count;
      line "%s_sum %s" m (prom_float w.Obs.w_sum);
      line "%s_count %d" m w.Obs.w_count;
      List.iter
        (fun (suffix, q) ->
          let g = m ^ suffix in
          line "# TYPE %s gauge" g;
          line "%s %s" g (prom_float (quantile w q)))
        [ ("_p50", 0.5); ("_p95", 0.95); ("_p99", 0.99) ])
    snap.Obs.wall_hists;
  List.iter
    (fun (name, (sp : Obs.span)) ->
      let calls = mangle name ^ "_calls_total" in
      line "# TYPE %s counter" calls;
      line "%s %d" calls sp.Obs.calls;
      let secs = mangle name ^ "_cpu_seconds_total" in
      line "# TYPE %s counter" secs;
      line "%s %s" secs (prom_float sp.Obs.seconds))
    snap.Obs.spans;
  Buffer.contents b
