type decision = {
  verts : Vec.t list;
  point : Vec.t;
  exact : bool;
}

type report = {
  outputs : decision option array;
  views : Vec.t array array;
  trace : Trace.t;
}

(* ---------------- the deterministic polytope computation ----------------

   Gamma(S) = the intersection of the hulls of all (|S|-f)-subsets of S.
   Three routes, chosen by dimension and instance size only (so every
   process with the same view makes the same choice):

   - d = 1: order statistics. hull(S \ F) = [min, max] of the survivors,
     and the tightest interval over all f-removals is obtained by
     removing the f smallest (resp. largest) points — Gamma is exactly
     [x_(f+1), x_(m-f)] of the sorted projections.
   - d = 2, few subsets: {!Hull_consensus.gamma_polygon}, the literal
     intersection of subset-hull polygons.
   - d = 2, many subsets: trimmed half-plane clipping. A half-plane
     [{x | u.x <= c}] contains hull(S \ F) iff [c >= max over survivors]
     of the projections, and the tightest valid offset over all F is the
     (f+1)-th largest projection. Every facet of Gamma lies on a facet
     of some subset hull, whose supporting line passes through two input
     points — so clipping by the trimmed half-planes of every pair
     direction (and its rotation, which covers collinear inputs) is
     exact in O(m^2) clips instead of C(m, f) hull constructions.
   - d >= 3: no exact vertex enumeration here; an inner approximation by
     certified Gamma-points ({!Tverberg.gamma_point} plus every input
     that {!Tverberg.in_gamma} admits), flagged [exact = false]. *)

let binom_capped ~cap n k =
  let k = min k (n - k) in
  if k < 0 then 0
  else begin
    let acc = ref 1 in
    (try
       for i = 1 to k do
         acc := !acc * (n - k + i) / i;
         if !acc > cap then raise Exit
       done
     with Exit -> acc := cap + 1);
    !acc
  end

let subset_cap = 2000

let nth_largest k xs =
  List.nth (List.sort (fun a b -> compare (b : float) a) xs) (k - 1)

let gamma_interval ~f s =
  let xs = List.sort compare (List.map (fun v -> v.(0)) s) in
  let m = List.length xs in
  if m < (2 * f) + 1 then None
  else begin
    let lo = List.nth xs f and hi = List.nth xs (m - 1 - f) in
    let verts =
      if lo = hi then [ [| lo |] ] else [ [| lo |]; [| hi |] ]
    in
    Some { verts; point = [| (lo +. hi) /. 2. |]; exact = true }
  end

let trimmed_polygon ~f s =
  let m = List.length s in
  let arr = Array.of_list s in
  let clip poly ~normal =
    if Polygon.is_empty poly then poly
    else begin
      let nx = normal.(0) and ny = normal.(1) in
      let len = Float.hypot nx ny in
      if len < 1e-12 then poly
      else begin
        let u = [| nx /. len; ny /. len |] in
        let projections =
          List.map (fun v -> (u.(0) *. v.(0)) +. (u.(1) *. v.(1))) s
        in
        let offset = nth_largest (f + 1) projections in
        Polygon.clip_halfplane poly ~normal:u ~offset
      end
    end
  in
  let poly = ref (Polygon.of_points s) in
  poly := clip !poly ~normal:[| 1.; 0. |];
  poly := clip !poly ~normal:[| -1.; 0. |];
  poly := clip !poly ~normal:[| 0.; 1. |];
  poly := clip !poly ~normal:[| 0.; -1. |];
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      let dx = arr.(j).(0) -. arr.(i).(0)
      and dy = arr.(j).(1) -. arr.(i).(1) in
      (* the pair's edge normals, both orientations, plus the pair
         direction itself (covers inputs collinear along the pair) *)
      poly := clip !poly ~normal:[| -.dy; dx |];
      poly := clip !poly ~normal:[| dy; -.dx |];
      poly := clip !poly ~normal:[| dx; dy |];
      poly := clip !poly ~normal:[| -.dx; -.dy |]
    done
  done;
  !poly

let gamma_polygon_scalable ~f s =
  if binom_capped ~cap:subset_cap (List.length s) f <= subset_cap then
    Hull_consensus.gamma_polygon ~f s
  else trimmed_polygon ~f s

let choose_polytope ~f s =
  match s with
  | [] -> None
  | v :: _ -> (
      match Vec.dim v with
      | 1 -> gamma_interval ~f s
      | 2 ->
          let poly = gamma_polygon_scalable ~f s in
          if Polygon.is_empty poly then None
          else
            Option.map
              (fun point ->
                { verts = Polygon.vertices poly; point; exact = true })
              (Polygon.centroid poly)
      | _ -> (
          match Tverberg.gamma_point ~f s with
          | None -> None
          | Some pt ->
              let certified = List.filter (Tverberg.in_gamma ~f s) s in
              let verts = Hull.extreme_points (pt :: certified) in
              Some { verts; point = pt; exact = false }))

(* ---------------- the engine protocol ---------------- *)

let protocol (inst : Problem.instance) =
  let { Problem.n; f; d; inputs; _ } = inst in
  let commanders = Array.to_list (Array.mapi (fun c v -> (c, v)) inputs) in
  let om =
    Om.protocol ~n ~f ~commanders ~default:(Vec.zero d)
      ~compare:Vec.compare_lex
  in
  {
    om with
    Protocol.output =
      (fun st -> choose_polytope ~f (Array.to_list (om.Protocol.output st)));
  }

let async_protocol (inst : Problem.instance) =
  let { Problem.n; f; d; inputs; _ } = inst in
  let commanders = Array.to_list (Array.mapi (fun c v -> (c, v)) inputs) in
  let om =
    Om.async_protocol ~n ~f ~commanders ~default:(Vec.zero d)
      ~compare:Vec.compare_lex
  in
  {
    om with
    Protocol.output =
      (fun st -> choose_polytope ~f (Array.to_list (om.Protocol.output st)));
  }

let run (inst : Problem.instance) ?corrupt ?fault () =
  let { Problem.n; f; d; inputs; faulty } = inst in
  let views, trace =
    Om.broadcast_all ~n ~f ~inputs ~faulty ?corrupt ?fault
      ~default:(Vec.zero d) ~compare:Vec.compare_lex ()
  in
  let outputs =
    Array.map (fun view -> choose_polytope ~f (Array.to_list view)) views
  in
  { outputs; views; trace }
