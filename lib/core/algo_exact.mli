(** Algorithm ALGO (Section 9) for synchronous systems, in all four
    validity flavours.

    Step 1: every process Byzantine-broadcasts its d-dimensional input
    (via {!Om}); all non-faulty processes then hold the identical
    multiset [S].

    Step 2: each process applies the same deterministic choice function
    to its copy of [S]:
    - {b Standard}: a point of [Gamma(S)] (by the joint LP; requires
      [n >= (d+1)f + 1] for non-emptiness — Theorem 1);
    - {b K_relaxed 1}: coordinate-wise scalar consensus rule
      (trimmed median; Section 5.3);
    - {b K_relaxed k, k >= 2}: a point of
      [Psi(S) = intersection of H_k(T)] (Theorem 3);
    - {b Delta_p (delta, p)} (constant delta): a point whose worst-case
      Lp distance to any (|S|-f)-subset hull is at most [delta]
      (via [Gamma] when available, the exact L-infinity LP for p = inf,
      or the delta* optimizer otherwise);
    - {b Input_dependent p}: the delta*-minimizing point — ALGO Step 2
      exactly as printed.

    Agreement holds because the choice function is deterministic and all
    non-faulty views are identical; Validity holds by construction of the
    chosen point; Termination is [f + 1] rounds of OM. *)

type report = {
  outputs : Vec.t option array;
      (** per process: the decision, or [None] when the required region
          was empty (the algorithm cannot decide — used to witness
          sub-threshold [n]) *)
  delta_used : float array;
      (** per process: the relaxation actually used (0 when a
          [Gamma]-point existed; [delta*(S)] for input-dependent) *)
  views : Vec.t array array;  (** row p = the multiset S as decided by p *)
  trace : Trace.t;
}

val choose_output :
  validity:Problem.validity ->
  f:int ->
  Vec.t list ->
  (Vec.t * float) option
(** Step 2 in isolation: the deterministic choice on a view [S].
    Returns the point and the relaxation used. Exposed for tests and for
    the asynchronous algorithm's round-0 verification. *)

val protocol :
  Problem.instance ->
  validity:Problem.validity ->
  (Vec.t Om.state, Vec.t Om.entry list, (Vec.t * float) option) Protocol.t
(** ALGO as an engine protocol: the {!Om.protocol} relay phase with the
    output hook replaced by Step 2 — each process's output is
    {!choose_output} on its broadcast view (the decided point and the
    relaxation used, or [None] when the required region is empty). Run
    under {!Scheduler.Rounds} with [limit = f + 1], e.g. via
    {!Explore.run_protocol} to quantify over fault schedules. *)

val async_protocol :
  Problem.instance ->
  validity:Problem.validity ->
  (Vec.t Om.state, Vec.t Om.entry, (Vec.t * float) option) Protocol.t
(** ALGO over the eager-relay {!Om.async_protocol}: same Step 2 output
    hook as {!protocol}, but the relay phase runs under any step
    scheduler — this is the form {!Explore.check} model-checks. *)

val run :
  Problem.instance ->
  validity:Problem.validity ->
  ?corrupt:(int -> Vec.t Om.corruption) ->
  ?fault:Fault.spec ->
  unit ->
  report
(** Full execution over the simulator. [corrupt] drives the Byzantine
    processes' lies during Step 1 (default: faulty-but-obedient);
    [fault] overlays a crash / omission / delay {!Fault.spec} on the
    instance's faulty set, composed after [corrupt]. *)
