(** Save and load problem instances and experiment artifacts as JSON
    (a minimal self-contained writer/parser — no external dependencies),
    so runs can be archived, shared, and replayed bit-for-bit.

    The JSON dialect is deliberately small: objects, arrays, strings,
    floats, ints, booleans, null. Finite floats are printed with "%.17g"
    so every IEEE double round-trips exactly — replays reproduce the
    original executions.

    {b Non-finite floats.} JSON has no representation for [nan],
    [infinity] or [neg_infinity]; {!to_string} serializes them as
    [null]. This is deliberately lossy on read-back ([Float nan]
    becomes [Null]) but guarantees the writer can never emit output
    that {!of_string} — or any other JSON parser — rejects. Code that
    must distinguish "absent" from "not a number" should encode that
    distinction explicitly (e.g. as a string tag) rather than rely on
    float round-tripping.

    String escapes follow RFC 8259: [\u] escapes outside the Basic
    Multilingual Plane are read as UTF-16 surrogate pairs and decoded
    to a single code point; a lone surrogate is a parse error. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string
val of_string : string -> (json, string) result
(** Parse; [Error msg] with position information on malformed input. *)

val member : string -> json -> json option
(** Object field lookup. *)

(** {1 Instances} *)

val instance_to_json : Problem.instance -> json
val instance_of_json : json -> (Problem.instance, string) result

val save_instance : string -> Problem.instance -> unit
(** Write to a file path. *)

val load_instance : string -> (Problem.instance, string) result
