(** TLA+ export: abstract specifications and concrete trace behaviors
    for the engine protocols, plus the in-process invariant evaluator
    that checks what the abstraction elides.

    Two artifacts are generated, both plain [.tla] text:

    - {!spec} — a VectorConsensus-style module for one protocol
      instance: concrete constants [N]/[F]/[D] (and the real-valued
      [eps] as a comment — TLA+ values are abstract), [Init]/[Next]
      with [Propose]/[Decide] actions, and [Validity]/[Agreement]
      invariants. The module is self-contained and model-checkable by
      TLC offline (bind the [Values] constant to any small finite set).
      Over abstract values, hull membership degrades to "decided only
      what some honest process proposed" and epsilon-agreement to exact
      agreement; the concrete geometric conditions are checked
      in-process by {!check_behavior} instead.
    - {!behavior} — one recorded execution as a TLA+ behavior module:
      the delivery trace as a [Sequences] constant plus a [TraceValid]
      predicate ([ASSUME]d, so [tlc] validates it at parse time).

    Both are byte-stable for a given input — golden tests pin the
    output, and regenerated artifacts diff cleanly. *)

type kind =
  | Broadcast  (** commander-relay broadcast (Om, Bracha) *)
  | Consensus  (** vector consensus (the algo_* family) *)

type params = {
  name : string;
      (** TLA+ module name; must match [[A-Za-z][A-Za-z0-9_]*] *)
  kind : kind;
  n : int;
  f : int;
  d : int;
  eps : float;  (** epsilon-agreement allowance; [0.] means exact *)
  validity : Problem.validity;
  faulty : int list;  (** actual faulty ids, each in [0 .. n-1] *)
  topology : Topology.spec option;
      (** communication graph, when not complete; rendered as a header
          comment in both artifacts (the abstract actions stay
          topology-oblivious — the engine filters absent edges) *)
}

val params :
  name:string ->
  kind:kind ->
  n:int ->
  f:int ->
  ?d:int ->
  ?eps:float ->
  ?validity:Problem.validity ->
  ?faulty:int list ->
  ?topology:Topology.spec ->
  unit ->
  params
(** Validating constructor: checks the module name shape, [n >= 1],
    [0 <= f], [d >= 1] (default [1]), [eps >= 0.] (default [0.]),
    [validity] (default {!Problem.Standard}) and the [faulty] ids
    (default [[]]). [Input_dependent] validity is rejected — its
    allowance depends on the runner's kappa bound, not on the instance
    alone; export those runs under the [Delta_p] form the runner
    reports. [topology] (default absent = complete) must instantiate at
    this [n]. Raises [Invalid_argument] otherwise. *)

val spec : params -> string
(** The abstract instance specification (see module docs). *)

val behavior : params -> Trace.event list -> string
(** [behavior p events] renders one execution's delivery trace as a
    module named [p.name] containing [Trace == << [step |-> ..,
    src |-> .., dst |-> ..], .. >>] and [ASSUME TraceValid], where
    [TraceValid] requires in-range processes and non-decreasing steps —
    exactly what {!check_trace} evaluates in-process. *)

val check_trace : n:int -> Trace.event list -> (unit, string) result
(** The in-process evaluation of [TraceValid]: every event's [src] and
    [dst] in [0 .. n-1] and [step]s non-decreasing. [Error] carries the
    first violated conjunct. *)

val check_behavior :
  params ->
  inputs:Vec.t array ->
  outputs:Vec.t option array ->
  (unit, string) result
(** The concrete invariants the abstract spec cannot express, evaluated
    on a finished consensus execution (honest processes only; faulty
    outputs are ignored):

    - {e Termination}: every honest process decided.
    - {e Validity}: honest outputs satisfy [p.validity] against the
      honest inputs ({!Validity.standard_validity} and friends).
    - {e Agreement}: honest outputs within [p.eps] in L-inf
      ({!Validity.eps_agreement}; exact {!Validity.agreement} when
      [p.eps = 0.]).

    [Error] names the first violated invariant with its margin. *)

val validate : string -> (string, string) result
(** Light structural validation of [.tla] text (no TLC needed): a
    [---- MODULE <name> ----] header line, a terminating [====] line,
    and no text after the terminator. [Ok] carries the module name. *)
