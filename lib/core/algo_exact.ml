type report = {
  outputs : Vec.t option array;
  delta_used : float array;
  views : Vec.t array array;
  trace : Trace.t;
}

let coordinatewise_median ~f s =
  match s with
  | [] -> invalid_arg "Algo_exact: empty view"
  | v :: _ ->
      let d = Vec.dim v in
      Vec.init d (fun i ->
          Scalar_consensus.trimmed_median ~f (List.map (fun u -> u.(i)) s))

let choose_output ~validity ~f s =
  match s with
  | [] -> None
  | v :: _ -> (
      let d = Vec.dim v in
      match validity with
      | Problem.Standard ->
          Option.map (fun pt -> (pt, 0.)) (Tverberg.gamma_point ~f s)
      | Problem.K_relaxed 1 -> Some (coordinatewise_median ~f s, 0.)
      | Problem.K_relaxed k -> (
          (* Gamma(S) is a subset of Psi(S) (H(T) is inside H_k(T)), and
             is non-empty whenever n >= (d+1)f+1 — so the cheap exact-BVC
             point serves, exactly as in the sufficiency proof of
             Theorem 3. Fall back to the full Psi LP otherwise. *)
          match Tverberg.gamma_point ~f s with
          | Some pt -> Some (pt, 0.)
          | None ->
              Option.map
                (fun pt -> (pt, 0.))
                (K_hull.feasible_point ~d (K_hull.psi_region ~k ~f s)))
      | Problem.Delta_p { delta; p } -> (
          match Tverberg.gamma_point ~f s with
          | Some pt -> Some (pt, 0.)
          | None ->
              if p = Float.infinity then
                Option.map
                  (fun pt -> (pt, delta))
                  (Delta_hull.inf_region_point ~d
                     (Delta_hull.gamma_inf_region ~delta ~f s))
              else
                let r = Delta_hull.delta_star ~p ~f s in
                if r.Delta_hull.value <= delta +. 1e-9 then
                  Some (r.Delta_hull.point, r.Delta_hull.value)
                else None)
      | Problem.Input_dependent { p } ->
          let r = Delta_hull.delta_star ~p ~f s in
          Some (r.Delta_hull.point, r.Delta_hull.value))

let protocol (inst : Problem.instance) ~validity =
  let { Problem.n; f; d; inputs; _ } = inst in
  let commanders = Array.to_list (Array.mapi (fun c v -> (c, v)) inputs) in
  let om =
    Om.protocol ~n ~f ~commanders ~default:(Vec.zero d)
      ~compare:Vec.compare_lex
  in
  {
    om with
    Protocol.output =
      (fun st ->
        choose_output ~validity ~f (Array.to_list (om.Protocol.output st)));
  }

let async_protocol (inst : Problem.instance) ~validity =
  let { Problem.n; f; d; inputs; _ } = inst in
  let commanders = Array.to_list (Array.mapi (fun c v -> (c, v)) inputs) in
  let om =
    Om.async_protocol ~n ~f ~commanders ~default:(Vec.zero d)
      ~compare:Vec.compare_lex
  in
  {
    om with
    Protocol.output =
      (fun st ->
        choose_output ~validity ~f (Array.to_list (om.Protocol.output st)));
  }

let run (inst : Problem.instance) ~validity ?corrupt ?fault () =
  let { Problem.n; f; d; inputs; faulty } = inst in
  (* Step 1: Byzantine broadcast of every input. *)
  let views, trace =
    Om.broadcast_all ~n ~f ~inputs ~faulty ?corrupt ?fault
      ~default:(Vec.zero d) ~compare:Vec.compare_lex ()
  in
  (* Step 2: identical deterministic choice at every process. *)
  let outputs = Array.make n None in
  let delta_used = Array.make n 0. in
  Array.iteri
    (fun p view ->
      match choose_output ~validity ~f (Array.to_list view) with
      | Some (pt, delta) ->
          outputs.(p) <- Some pt;
          delta_used.(p) <- delta
      | None -> outputs.(p) <- None)
    views;
  { outputs; delta_used; views; trace }
