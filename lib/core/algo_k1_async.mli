(** The asynchronous k = 1 reduction (Section 5.3): 1-relaxed
    approximate BVC solved coordinate-by-coordinate with asynchronous
    scalar approximate consensus, at [n >= 3f + 1] — no dependence on
    the dimension [d] at all.

    Each coordinate runs {!Algo_async} on a 1-dimensional sub-instance
    with standard validity: for scalars the [Gamma] of any [m >= 2f+1]
    values is the non-empty interval between the (f+1)-th smallest and
    (f+1)-th largest, so the round-1 safe region always exists with
    [n - f >= 2f + 1] verified values. The reassembled vector satisfies
    1-relaxed validity (Definition 8 with k = 1): every coordinate lies
    in the honest coordinate range. *)

type report = {
  outputs : Vec.t option array;
      (** per process: the reassembled decision ([None] if any
          coordinate failed to decide) *)
  rounds : int;  (** rounds used per coordinate *)
  messages : int;  (** total deliveries across all coordinate runs *)
}

val run :
  Problem.instance ->
  eps:float ->
  ?policy:Async.policy ->
  ?adversary:Algo_async.adversary ->
  ?rounds:int ->
  ?fault:Fault.spec ->
  unit ->
  report
(** Requires [n >= 3f + 1] only. Runs the [d] coordinate instances as
    [d] separate asynchronous executions (they share no messages).
    [fault] applies the same crash / omission / delay {!Fault.spec} to
    every coordinate run. *)

(** {1 Schedule exploration}

    For the {!Explore} engine the [d] coordinate instances are folded
    into a {e single} asynchronous execution: each wire message is
    tagged with its coordinate, so one adversarial scheduler interleaves
    all coordinates at once — strictly more schedules than [run]'s
    sequential per-coordinate executions reach. Since coordinates share
    no state, safety of the combined execution is equivalent. *)

type msg
(** A coordinate-tagged {!Algo_async.msg}. *)

type state
(** Per-process state: one {!Algo_async.proc} per coordinate. *)

val protocol :
  Problem.instance ->
  eps:float ->
  ?rounds:int ->
  ?adversary:Algo_async.adversary ->
  unit ->
  (state, msg, Vec.t option) Protocol.t
(** The folded single-execution form as an engine protocol: the [d]
    coordinate {!Algo_async.protocol}s side by side, wire messages
    coordinate-tagged, output reassembled per process ([None] if any
    coordinate is undecided). Same argument validation as {!session}. *)

type session

val session :
  Problem.instance ->
  eps:float ->
  ?rounds:int ->
  ?adversary:Algo_async.adversary ->
  unit ->
  session

val session_actors : session -> msg Async.actor array
val session_adversary : session -> msg Adversary.t

val session_outputs : session -> Vec.t option array
(** Reassembled per-process decisions, as in {!report}[.outputs]. *)

val summarize : msg -> string
(** E.g. ["c1:Ready(r0,o2)"] — coordinate, then the inner summary. *)
