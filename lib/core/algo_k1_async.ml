type report = {
  outputs : Vec.t option array;
  rounds : int;
  messages : int;
}

let default_rounds (inst : Problem.instance) ~eps =
  let { Problem.n; f; _ } = inst in
  let spread =
    match Problem.honest_inputs inst with
    | [] | [ _ ] -> 1.
    | pts ->
        let arr = Array.of_list pts in
        let m = ref 0. in
        Array.iteri
          (fun i u ->
            Array.iteri
              (fun j v -> if j > i then m := Float.max !m (Vec.dist_inf u v))
              arr)
          arr;
        !m
  in
  Algo_async.rounds_for_eps ~n ~f ~eps ~initial_spread:(spread +. 1e-6)

(* The 1-dimensional sub-instance for one coordinate. *)
let coord_instance (inst : Problem.instance) coord =
  let { Problem.n; f; inputs; faulty; _ } = inst in
  Problem.make ~n ~f ~d:1
    ~inputs:
      (Array.to_list (Array.map (fun v -> Vec.of_list [ v.(coord) ]) inputs))
    ~faulty

let run (inst : Problem.instance) ~eps ?policy ?adversary ?rounds ?fault () =
  let { Problem.n; f; d; _ } = inst in
  if n < (3 * f) + 1 then
    invalid_arg "Algo_k1_async.run: requires n >= 3f + 1";
  let rounds =
    match rounds with Some r -> r | None -> default_rounds inst ~eps
  in
  let messages = ref 0 in
  (* one scalar consensus per coordinate *)
  let coordinate_outputs =
    List.init d (fun coord ->
        let sub = coord_instance inst coord in
        let r =
          Algo_async.run sub ~validity:Problem.Standard ~rounds ?policy
            ?adversary ?fault ()
        in
        messages :=
          !messages
          + r.Algo_async.outcome.Async.trace.Trace.messages_delivered;
        r.Algo_async.outputs)
  in
  let outputs =
    Array.init n (fun p ->
        let coords =
          List.map (fun per_coord -> per_coord.(p)) coordinate_outputs
        in
        if List.exists Option.is_none coords then None
        else
          Some
            (Vec.of_list
               (List.map (fun o -> (Option.get o).(0)) coords)))
  in
  { outputs; rounds; messages = !messages }

type msg = int * Algo_async.msg

type state = Algo_async.proc array
(* one per-coordinate proc per process *)

let protocol (inst : Problem.instance) ~eps ?rounds ?adversary () =
  let { Problem.n; f; d; _ } = inst in
  if n < (3 * f) + 1 then
    invalid_arg "Algo_k1_async.session: requires n >= 3f + 1";
  let rounds =
    match rounds with Some r -> r | None -> default_rounds inst ~eps
  in
  let subs =
    Array.init d (fun coord ->
        Algo_async.protocol (coord_instance inst coord)
          ~validity:Problem.Standard ~rounds ?adversary ())
  in
  let tag coord sends = List.map (fun (dst, m) -> (dst, (coord, m))) sends in
  {
    Protocol.init =
      (fun ~me -> Array.map (fun sp -> sp.Protocol.init ~me) subs);
    on_start =
      (fun st ->
        List.concat
          (List.init d (fun c -> tag c (subs.(c).Protocol.on_start st.(c)))));
    on_tick = (fun _ ~time:_ -> []);
    on_receive =
      (fun st ~time batch ->
        List.concat_map
          (fun (src, (coord, inner)) ->
            tag coord
              (subs.(coord).Protocol.on_receive st.(coord) ~time
                 [ (src, inner) ]))
          batch);
    output =
      (fun st ->
        let coords =
          List.init d (fun c -> subs.(c).Protocol.output st.(c))
        in
        if List.exists Option.is_none coords then None
        else
          Some
            (Vec.of_list (List.map (fun o -> (Option.get o).(0)) coords)));
  }

type session = { k_n : int; k_d : int; subs : Algo_async.session array }

let session (inst : Problem.instance) ~eps ?rounds ?adversary () =
  let { Problem.n; f; d; _ } = inst in
  if n < (3 * f) + 1 then
    invalid_arg "Algo_k1_async.session: requires n >= 3f + 1";
  let rounds =
    match rounds with Some r -> r | None -> default_rounds inst ~eps
  in
  let subs =
    Array.init d (fun coord ->
        Algo_async.session (coord_instance inst coord)
          ~validity:Problem.Standard ~rounds ?adversary ())
  in
  { k_n = n; k_d = d; subs }

let session_actors s =
  let sub_actors = Array.map Algo_async.session_actors s.subs in
  let tag coord sends =
    List.map (fun (dst, m) -> (dst, (coord, m))) sends
  in
  Array.init s.k_n (fun me ->
      {
        Async.start =
          (fun () ->
            List.concat
              (List.init s.k_d (fun c ->
                   tag c (sub_actors.(c).(me).Async.start ()))));
        on_message =
          (fun ~src (coord, inner) ->
            tag coord
              (sub_actors.(coord).(me).Async.on_message ~src inner));
      })

let session_adversary s ~round ~src ~dst m =
  match m with
  | None -> None
  | Some (coord, inner) ->
      Option.map
        (fun i -> (coord, i))
        (Algo_async.session_adversary s.subs.(coord) ~round ~src ~dst
           (Some inner))

let session_outputs s =
  let per_coord = Array.map Algo_async.session_outputs s.subs in
  Array.init s.k_n (fun p ->
      let coords = List.init s.k_d (fun c -> per_coord.(c).(p)) in
      if List.exists Option.is_none coords then None
      else
        Some (Vec.of_list (List.map (fun o -> (Option.get o).(0)) coords)))

let summarize (coord, inner) =
  Printf.sprintf "c%d:%s" coord (Algo_async.summarize inner)
