(** End-to-end orchestration: build an instance, run the right algorithm
    for the (system, validity) pair, and grade the execution against
    every condition of the corresponding Definition (7-11).

    This is the API the examples, the experiment harness and the
    integration tests share. *)

type outcome = {
  instance : Problem.instance;
  honest_outputs : Vec.t list;  (** decisions of non-faulty processes *)
  decided : bool list;  (** per non-faulty process *)
  delta_used : float;  (** max relaxation used by any honest process *)
  checks : (string * Validity.check) list;
      (** named condition checks: agreement / validity / termination *)
  messages : int;  (** total messages delivered *)
}

val ok : outcome -> bool
(** All checks passed. *)

val run_sync :
  Problem.instance ->
  validity:Problem.validity ->
  ?corrupt:(int -> Vec.t Om.corruption) ->
  ?fault:Fault.spec ->
  unit ->
  outcome
(** Synchronous exact consensus (agreement must be exact). [fault]
    overlays a crash / omission / delay {!Fault.spec} on the instance's
    faulty set (composed after [corrupt]). *)

val run_async :
  Problem.instance ->
  validity:Problem.validity ->
  eps:float ->
  ?policy:Async.policy ->
  ?adversary:Algo_async.adversary ->
  ?rounds:int ->
  ?fault:Fault.spec ->
  unit ->
  outcome
(** Asynchronous approximate consensus ([eps]-agreement). [rounds]
    defaults to {!Algo_async.rounds_for_eps} on the honest input spread
    (plus the relaxation allowance). [fault] overlays a crash / omission
    / delay {!Fault.spec} on the instance's faulty set. *)

val pp : Format.formatter -> outcome -> unit
