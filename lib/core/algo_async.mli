(** The Relaxed Verified Averaging algorithm (Section 10) for
    asynchronous systems — and, with [validity = Standard], the plain
    Verified Averaging / approximate-BVC baseline it modifies.

    Structure (one single asynchronous execution; reliable broadcast is
    Bracha's protocol, instanced per (round, originator)):

    - {b Round 0}: every process RB-broadcasts its input.
    - {b Round 1} (Definition 12, [t = 0] case): once a process has
      verified [n - f] round-0 values [X], it picks the deterministic
      point of [intersection over C subseteq X, |C| = |X| - f of
      H_(delta,p)(C)] with the smallest workable delta — i.e.
      {!Algo_exact.choose_output} on [X] — and RB-broadcasts it together
      with the *justification* (the ids whose values it used).
    - {b Rounds t >= 2} (Definition 12, [t > 0] case): the average of
      [n - f] verified round-(t-1) values, again with justification.
    - {b Verification} (the "Verified" in Verified Averaging, [15]):
      every received round-t value is checked by recomputing the claimed
      combination from the already-verified round-(t-1) values; anything
      that does not reproduce is discarded, so a Byzantine process can
      bias *which* admissible value it sends but cannot inject an
      invalid one. Round-0 claims are arbitrary (an input is an input) —
      the [|X| - f]-subset intersection of round 1 is what protects
      validity, exactly as in Theorem 15's proof.
    - {b Decision}: after [rounds] averaging rounds; epsilon-agreement
      follows from the overlap argument — any two justification sets of
      size [n - f] share [n - 2f] members, so per-coordinate spread
      contracts by [f / (n - f)] per round.

    [rounds_for_eps] computes the round budget from that contraction
    rate. *)

type report = {
  outputs : Vec.t option array;
      (** decided value per process ([None] = did not decide, e.g. a
          crashed faulty process) *)
  delta_used : float array;  (** round-1 relaxation per process *)
  rounds : int;
  outcome : Async.outcome;
}

val rounds_for_eps :
  n:int -> f:int -> eps:float -> initial_spread:float -> int
(** Smallest [R >= 1] with [initial_spread * (f/(n-f))^(R-1) <= eps]
    (capped at 60; [1] when [f = 0]). *)

type adversary =
  [ `Obedient
  | `Silent
  | `Garbage
  | `Skew of float
  | `Greedy
  | `Equivocate of float ]
(** [`Obedient] follows the protocol (restricted adversary of the
    necessity proofs); [`Silent] crashes from the start; [`Garbage]
    sends unverifiable values (scaled noise) — discarded by
    verification, so it degrades to silence; [`Skew s] biases its
    *input* claim by factor [s] but then behaves (legitimate behaviour
    the subset-intersection must absorb); [`Greedy] follows the protocol
    but always selects the *admissible* justification set whose combined
    value is farthest from the crowd — the strongest behaviour the
    verification layer cannot reject; [`Equivocate s] claims a different
    round-0 input per destination (scaled by [1 + s*dst]) — the attack
    Bracha reliable broadcast must neutralize. *)

val run :
  Problem.instance ->
  validity:Problem.validity ->
  rounds:int ->
  ?policy:Async.policy ->
  ?adversary:adversary ->
  ?max_steps:int ->
  ?fault:Fault.spec ->
  unit ->
  report
(** Full execution on the {!Engine} under an {!Async.policy} scheduler
    (mapped via {!Async.scheduler_of_policy}). [fault]
    overlays a crash / omission / delay {!Fault.spec} on the instance's
    faulty set, composed after the protocol-level [adversary]'s network
    strategy. *)

(** {1 Schedule exploration}

    [run] executes one schedule chosen by an {!Async.policy}. To let the
    {!Explore} engine quantify over *all* schedules, a [session] exposes
    the protocol's raw ingredients — per-run mutable state, the actor
    array and the network-level adversary — without running anything:

    {[
      let r =
        Explore.fuzz
          ~make:(fun () -> Algo_async.session inst ~validity ~rounds ())
          ~n ~actors:Algo_async.session_actors
          ~check:(fun s -> grade (Algo_async.session_outputs s))
          ~faulty ~adversary:(Algo_async.session_adversary proto)
          ~seed ~trials ()
    ]}

    The network adversary is a pure function of (round, src, dst,
    message), so one prototype session's adversary can be shared across
    all explored runs. *)

type msg
(** Wire messages of the protocol (reliable-broadcast envelopes). *)

type proc
(** Per-process protocol state. *)

val protocol :
  Problem.instance ->
  validity:Problem.validity ->
  rounds:int ->
  ?adversary:adversary ->
  unit ->
  (proc, msg, Vec.t option) Protocol.t
(** The algorithm as an engine protocol (per-process output = decided
    value), ready for {!Engine.run} under any step scheduler or for
    {!Explore.run_protocol}/{!Explore.fuzz_protocol}. The [adversary]
    flavour fixes the faulty processes' {e protocol} behaviour
    ([`Silent] inert, [`Greedy] adversarial justification picks); its
    network-level message rewriting is a separate {!Adversary.t} — pass
    {!session_adversary} (or run via {!session}) to apply it. Same
    argument validation as {!run}. *)

type session

val session :
  Problem.instance ->
  validity:Problem.validity ->
  rounds:int ->
  ?adversary:adversary ->
  unit ->
  session
(** Fresh protocol state + actors for one execution; performs no
    deliveries itself. Same argument validation as {!run}. *)

val session_actors : session -> msg Async.actor array
val session_adversary : session -> msg Adversary.t
val session_outputs : session -> Vec.t option array
(** Decided value per process, as in {!report}[.outputs]. *)

val summarize : msg -> string
(** Render a message for {!Trace.event} summaries, e.g.
    ["Echo(r1,o3)"]. *)
