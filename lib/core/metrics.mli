(** Serialize {!Obs} snapshots as versioned JSON via {!Persist}.

    [Obs] itself is dependency-free and cannot see the JSON layer; this
    module is the bridge. The output is deterministic: metric names are
    sorted, histogram buckets ascend, and span timings (wall-clock
    noise) are omitted unless [~timings:true] — so a [--jobs N] run
    serializes byte-identically to [--jobs 1] whenever the instrumented
    computation itself is deterministic. *)

val schema : string
(** ["rbvc-metrics/1"]. *)

val to_json : ?timings:bool -> Obs.snapshot -> Persist.json
(** Encode a snapshot as
    [{ "schema": "rbvc-metrics/1", "counters": {..}, "histograms": {..},
       "spans": {..} }].
    Each histogram is
    [{ "count": n, "sum": s, "min": m, "max": M, "buckets": [[lo, c], ..] }]
    ([min]/[max] omitted when [count = 0]); each span is
    [{ "calls": n }], plus ["seconds"] when [timings] (default [false]
    — seconds are nondeterministic and break byte-identical output).
    With [~timings:true] a non-empty [wall_hists] field additionally
    serializes as ["wall_histograms"], each entry
    [{ "count", "sum", "min", "max", "bounds", "counts", "p50", "p95",
       "p99" }] — wall-clock latency data, segregated behind the same
    flag as span seconds for the same reason. *)

val quantile : Obs.wall_hist -> float -> float
(** [quantile w q] estimates the [q]-quantile ([0..1], clamped) of a
    wall-clock histogram by linear interpolation inside the bucket
    where the cumulative count crosses [q * count] (the overflow
    bucket is capped at the observed max). Result is clamped to the
    observed min/max; [0.] when the histogram is empty. *)

val to_prometheus : Obs.snapshot -> string
(** Render a snapshot in Prometheus text exposition format (one
    [# TYPE] line per family, names mangled [rbvc_<name>] with
    non-alphanumerics as [_]): counters as [<name>_total], gauges
    verbatim, int histograms with cumulative [le] buckets at the
    power-of-two upper edges, wall histograms as [<name>_seconds] with
    explicit-boundary [le] buckets plus [_p50]/[_p95]/[_p99] gauges,
    and spans as [_calls_total] / [_cpu_seconds_total]. *)

val write : ?timings:bool -> string -> Obs.snapshot -> unit
(** [write path snap] writes [to_json snap] to [path], newline
    terminated. *)
