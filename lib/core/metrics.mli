(** Serialize {!Obs} snapshots as versioned JSON via {!Persist}.

    [Obs] itself is dependency-free and cannot see the JSON layer; this
    module is the bridge. The output is deterministic: metric names are
    sorted, histogram buckets ascend, and span timings (wall-clock
    noise) are omitted unless [~timings:true] — so a [--jobs N] run
    serializes byte-identically to [--jobs 1] whenever the instrumented
    computation itself is deterministic. *)

val schema : string
(** ["rbvc-metrics/1"]. *)

val to_json : ?timings:bool -> Obs.snapshot -> Persist.json
(** Encode a snapshot as
    [{ "schema": "rbvc-metrics/1", "counters": {..}, "histograms": {..},
       "spans": {..} }].
    Each histogram is
    [{ "count": n, "sum": s, "min": m, "max": M, "buckets": [[lo, c], ..] }]
    ([min]/[max] omitted when [count = 0]); each span is
    [{ "calls": n }], plus ["seconds"] when [timings] (default [false]
    — seconds are nondeterministic and break byte-identical output). *)

val write : ?timings:bool -> string -> Obs.snapshot -> unit
(** [write path snap] writes [to_json snap] to [path], newline
    terminated. *)
