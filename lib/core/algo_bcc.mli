(** Byzantine convex consensus (Tseng & Vaidya, "Byzantine Convex
    Consensus: An Optimal Algorithm", arXiv:1307.1332 — the paper's
    references [15, 16]) as an engine protocol: non-faulty processes
    agree on an identical convex {e polytope} inside the hull of the
    non-faulty inputs, as large as the fault pattern allows — namely
    [Gamma(S)], the intersection of the hulls of all (n-f)-subsets of
    the broadcast multiset [S].

    Structure is exactly {!Algo_exact}'s: Step 1 Byzantine-broadcasts
    every input over {!Om} (so all honest views agree), Step 2 is a
    deterministic per-process computation — here the whole optimal
    polytope instead of a single point, which is what makes the output
    the largest any algorithm can promise (their Theorem 4).

    The polytope representation depends on the dimension:
    - [d = 1]: the exact trimmed interval [[x_(f+1), x_(m-f)]] of the
      sorted view.
    - [d = 2]: the exact polygon, via subset-hull intersection
      ({!Hull_consensus.gamma_polygon}) when [C(m, f)] is small and via
      trimmed half-plane clipping (every pair direction's half-plane at
      the (f+1)-th largest projection — O(m^2) clips, same polygon)
      when it is not.
    - [d >= 3]: an inner approximation by certified [Gamma]-points
      (marked [exact = false]): {!Tverberg.gamma_point} plus every
      input {!Tverberg.in_gamma} admits, reduced to its extreme points.

    Requires [n >= max(3f+1, (d+1)f+1)] for a guaranteed non-empty
    output (3f+1 for the broadcast, (d+1)f+1 for [Gamma] by a Helly
    argument); below that threshold processes may output [None].
    Agreement is structural: honest views are identical after Step 1
    and Step 2 is deterministic. *)

type decision = {
  verts : Vec.t list;
      (** the polytope's vertices (CCW for [d = 2]); for [d >= 3] the
          extreme points of the certified inner approximation *)
  point : Vec.t;
      (** a deterministic representative point of the polytope
          (interval midpoint, polygon centroid, or the certified
          [Gamma]-point) — what a point-valued consumer should use *)
  exact : bool;  (** whether [verts] enumerates [Gamma(S)] exactly *)
}

type report = {
  outputs : decision option array;
      (** per process; [None] only when [Gamma] is empty (possible
          below the process-count threshold) *)
  views : Vec.t array array;
      (** [views.(p).(c)]: process [p]'s decision for commander [c] *)
  trace : Trace.t;
}

val choose_polytope : f:int -> Vec.t list -> decision option
(** Step 2 alone: the deterministic polytope of one (agreed) view.
    Exposed for tests and for re-deriving a decision from a recorded
    view. *)

val protocol :
  Problem.instance ->
  (Vec.t Om.state, Vec.t Om.entry list, decision option) Protocol.t
(** {!Om.protocol} (lock-step rounds, run with [limit = f + 1]) with the
    output hook replaced by the polytope computation. Raises
    [Invalid_argument] exactly when {!Om.protocol} does. *)

val async_protocol :
  Problem.instance ->
  (Vec.t Om.state, Vec.t Om.entry, decision option) Protocol.t
(** The eager-relay form for step schedulers — the instantiation
    {!Explore.check} model-checks ([rbvc explore check
    --protocol algo-bcc]). *)

val run :
  Problem.instance ->
  ?corrupt:(int -> Vec.t Om.corruption) ->
  ?fault:Fault.spec ->
  unit ->
  report
(** Full synchronous execution: {!Om.broadcast_all} then the identical
    deterministic choice at every process. [corrupt] lets faulty
    relayers equivocate; [fault] overlays a crash / omission / delay
    spec on the faulty set. *)
