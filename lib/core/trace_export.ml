let schema = "rbvc-trace/1"

module T = Obs.Tracer

let tid_of_track t = t + 1
let track_of_tid t = t - 1

let track_label t = if t = -1 then "scheduler" else Printf.sprintf "p%d" t

let arg_to_json = function
  | T.Int n -> Persist.Int n
  | T.Str s -> Persist.String s

let arg_of_json = function
  | Persist.Int n -> Ok (T.Int n)
  | Persist.String s -> Ok (T.Str s)
  | _ -> Error "trace arg must be an int or a string"

let flow_id args =
  match List.assoc_opt "flow" args with Some (T.Int id) -> id | _ -> 0

let event_to_json ~ts (e : T.event) =
  let ph, extra =
    match e.kind with
    | T.Begin -> ("B", [])
    | T.End -> ("E", [])
    | T.Instant -> ("i", [ ("s", Persist.String "t") ])
    | T.Flow_start -> ("s", [ ("id", Persist.Int (flow_id e.args)) ])
    | T.Flow_end ->
        ( "f",
          [ ("id", Persist.Int (flow_id e.args)); ("bp", Persist.String "e") ]
        )
  in
  Persist.Obj
    ([
       ("name", Persist.String e.name);
       ("cat", Persist.String "rbvc");
       ("ph", Persist.String ph);
       ("ts", Persist.Int ts);
       ("pid", Persist.Int 0);
       ("tid", Persist.Int (tid_of_track e.track));
     ]
    @ extra
    @ [
        ( "args",
          Persist.Obj
            (("lc", Persist.Int e.lclock)
            :: List.map (fun (k, v) -> (k, arg_to_json v)) e.args) );
      ])

let thread_metadata ?(labels = []) events =
  let module S = Set.Make (Int) in
  let tracks =
    List.fold_left
      (fun acc (e : T.event) -> S.add e.track acc)
      (List.fold_left (fun acc (t, _) -> S.add t acc) S.empty labels)
      events
  in
  List.map
    (fun track ->
      let label =
        match List.assoc_opt track labels with
        | Some l -> l
        | None -> track_label track
      in
      Persist.Obj
        [
          ("name", Persist.String "thread_name");
          ("ph", Persist.String "M");
          ("pid", Persist.Int 0);
          ("tid", Persist.Int (tid_of_track track));
          ("args", Persist.Obj [ ("name", Persist.String label) ]);
        ])
    (S.elements tracks)

let to_json ?(meta = []) ?labels events =
  Persist.Obj
    [
      ("schema", Persist.String schema);
      ("displayTimeUnit", Persist.String "ms");
      ("meta", Persist.Obj meta);
      ( "traceEvents",
        Persist.List
          (thread_metadata ?labels events
          @ List.mapi (fun ts e -> event_to_json ~ts e) events) );
    ]

let event_of_json j =
  let str k =
    match Persist.member k j with
    | Some (Persist.String s) -> Ok s
    | _ -> Error (Printf.sprintf "trace event: missing string field %S" k)
  in
  let int k =
    match Persist.member k j with
    | Some (Persist.Int n) -> Ok n
    | _ -> Error (Printf.sprintf "trace event: missing int field %S" k)
  in
  let ( let* ) = Result.bind in
  let* ph = str "ph" in
  if ph = "M" then Ok None
  else
    let* kind =
      match ph with
      | "B" -> Ok T.Begin
      | "E" -> Ok T.End
      | "i" -> Ok T.Instant
      | "s" -> Ok T.Flow_start
      | "f" -> Ok T.Flow_end
      | _ -> Error (Printf.sprintf "trace event: unknown phase %S" ph)
    in
    let* name = str "name" in
    let* tid = int "tid" in
    let* lclock, args =
      match Persist.member "args" j with
      | Some (Persist.Obj (("lc", Persist.Int lc) :: rest)) ->
          let rec convert acc = function
            | [] -> Ok (List.rev acc)
            | (k, v) :: tl -> (
                match arg_of_json v with
                | Ok a -> convert ((k, a) :: acc) tl
                | Error e -> Error e)
          in
          let* args = convert [] rest in
          Ok (lc, args)
      | _ -> Error "trace event: args must be an object starting with \"lc\""
    in
    Ok (Some { T.lclock; track = track_of_tid tid; name; kind; args })

(* Recover a track label from a ["thread_name"] metadata record, so a
   labeled trace round-trips through {!read_labeled}/{!merge}. *)
let label_of_json j =
  match (Persist.member "ph" j, Persist.member "name" j) with
  | Some (Persist.String "M"), Some (Persist.String "thread_name") -> (
      match (Persist.member "tid" j, Persist.member "args" j) with
      | Some (Persist.Int tid), Some args -> (
          match Persist.member "name" args with
          | Some (Persist.String l) -> Some (track_of_tid tid, l)
          | _ -> None)
      | _ -> None)
  | _ -> None

let of_json_labeled j =
  match Persist.member "schema" j with
  | Some (Persist.String s) when s = schema -> (
      match Persist.member "traceEvents" j with
      | Some (Persist.List items) ->
          let rec go acc labels = function
            | [] -> Ok (List.rev acc, List.rev labels)
            | item :: tl -> (
                match event_of_json item with
                | Ok (Some e) -> go (e :: acc) labels tl
                | Ok None -> (
                    match label_of_json item with
                    | Some l -> go acc (l :: labels) tl
                    | None -> go acc labels tl)
                | Error e -> Error e)
          in
          go [] [] items
      | _ -> Error "trace: missing traceEvents array")
  | Some (Persist.String s) ->
      Error (Printf.sprintf "trace: schema %S, expected %S" s schema)
  | _ -> Error "trace: missing schema field"

let of_json j = Result.map fst (of_json_labeled j)

let write ?meta ?labels path events =
  let oc = open_out path in
  output_string oc (Persist.to_string (to_json ?meta ?labels events));
  output_char oc '\n';
  close_out oc

let read_file path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    contents
  with
  | exception Sys_error msg -> Error msg
  | contents -> Persist.of_string (String.trim contents)

let read path = Result.bind (read_file path) of_json
let read_labeled path = Result.bind (read_file path) of_json_labeled

(* ---------------- multi-process stitching ----------------

   [merge] takes per-process dumps — (part name, events, labels) — and
   produces one trace: each part's tracks are remapped into a disjoint
   block of the global track space (labels prefixed "part/"), and the
   parts' event streams are interleaved so that every flow arrow whose
   send and delivery live in different parts is emitted send-first —
   the ordering Chrome's flow renderer (and our position-based [ts])
   needs. Within a part, relative order is untouched, so per-track
   span nesting and lclock monotonicity survive and the merged trace
   passes {!check_spans} whenever the parts do. *)

let merge parts =
  (* disjoint track spaces: sorted per-part tracks pack left-to-right *)
  let next = ref 0 in
  let remapped =
    List.map
      (fun (pname, events, labels) ->
        let module S = Set.Make (Int) in
        let tracks =
          List.fold_left
            (fun acc (e : T.event) -> S.add e.track acc)
            (List.fold_left (fun acc (t, _) -> S.add t acc) S.empty labels)
            events
        in
        let map = Hashtbl.create 8 in
        S.iter
          (fun t ->
            Hashtbl.replace map t !next;
            incr next)
          tracks;
        let global t = Hashtbl.find map t in
        let labels' =
          List.map
            (fun t ->
              let l =
                match List.assoc_opt t labels with
                | Some l -> l
                | None -> track_label t
              in
              (global t, pname ^ "/" ^ l))
            (S.elements tracks)
        in
        let events' =
          List.map (fun (e : T.event) -> { e with T.track = global e.track }) events
        in
        (events', labels'))
      parts
  in
  let labels = List.concat_map snd remapped in
  let queues = Array.of_list (List.map (fun (evs, _) -> ref evs) remapped) in
  let n = Array.length queues in
  (* which part holds each flow's send *)
  let start_part = Hashtbl.create 64 in
  Array.iteri
    (fun p q ->
      List.iter
        (fun (e : T.event) ->
          if e.kind = T.Flow_start then
            let id = flow_id e.args in
            if not (Hashtbl.mem start_part id) then Hashtbl.add start_part id p)
        !q)
    queues;
  let started = Hashtbl.create 64 in
  let out = ref [] in
  let emit (e : T.event) =
    if e.kind = T.Flow_start then Hashtbl.replace started (flow_id e.args) ();
    out := e :: !out
  in
  (* a Flow_end blocks its part while its matching send sits unemitted
     in a DIFFERENT part; everything else flows freely *)
  let blocked p (e : T.event) =
    e.kind = T.Flow_end
    &&
    let id = flow_id e.args in
    match Hashtbl.find_opt start_part id with
    | Some sp when sp <> p -> not (Hashtbl.mem started id)
    | _ -> false
  in
  let remaining () = Array.exists (fun q -> !q <> []) queues in
  while remaining () do
    let progressed = ref false in
    for p = 0 to n - 1 do
      let q = queues.(p) in
      let continue = ref true in
      while !continue do
        match !q with
        | e :: tl when not (blocked p e) ->
            q := tl;
            emit e;
            progressed := true
        | _ -> continue := false
      done
    done;
    if not !progressed then begin
      (* cyclic (or dangling) cross-part flows: force the first blocked
         head through rather than dropping events *)
      let forced = ref false in
      for p = 0 to n - 1 do
        if not !forced then
          match !(queues.(p)) with
          | e :: tl ->
              queues.(p) := tl;
              emit e;
              forced := true
          | [] -> ()
      done
    end
  done;
  (List.rev !out, labels)

(* ---------------- well-formedness ---------------- *)

let check_spans events =
  let stacks : (int, (string * int) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack track =
    match Hashtbl.find_opt stacks track with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks track s;
        s
  in
  let err = ref None in
  List.iteri
    (fun i (e : T.event) ->
      if !err = None then
        match e.kind with
        | T.Begin -> (
            let s = stack e.track in
            (* within a track, a nested span cannot start before its
               parent's logical clock *)
            match !s with
            | (parent, lc) :: _ when e.lclock < lc ->
                err :=
                  Some
                    (Printf.sprintf
                       "event %d: span %S on %s begins at lclock %d inside \
                        %S begun at %d"
                       i e.name (track_label e.track) e.lclock parent lc)
            | _ -> s := (e.name, e.lclock) :: !s)
        | T.End -> (
            let s = stack e.track in
            match !s with
            | [] ->
                err :=
                  Some
                    (Printf.sprintf
                       "event %d: End %S on %s with no open span" i e.name
                       (track_label e.track))
            | (name, lc) :: rest ->
                if name <> e.name then
                  err :=
                    Some
                      (Printf.sprintf
                         "event %d: End %S on %s does not match open span %S"
                         i e.name (track_label e.track) name)
                else if e.lclock < lc then
                  err :=
                    Some
                      (Printf.sprintf
                         "event %d: span %S on %s ends at lclock %d < begin \
                          %d"
                         i e.name (track_label e.track) e.lclock lc)
                else s := rest)
        | T.Instant | T.Flow_start | T.Flow_end -> ())
    events;
  match !err with
  | Some e -> Error e
  | None ->
      Hashtbl.fold
        (fun track s acc ->
          match (acc, !s) with
          | Error _, _ | _, [] -> acc
          | Ok (), (name, _) :: _ ->
              Error
                (Printf.sprintf "span %S on %s never ends" name
                   (track_label track)))
        stacks (Ok ())

(* ---------------- text views ---------------- *)

let pp_arg ppf (k, v) =
  match v with
  | T.Int n -> Format.fprintf ppf "%s=%d" k n
  | T.Str s -> Format.fprintf ppf "%s=%s" k s

let pp_args ppf = function
  | [] -> ()
  | args ->
      Format.fprintf ppf "  [%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           pp_arg)
        args

let pp_timeline ppf events =
  let depths : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
  let depth track =
    match Hashtbl.find_opt depths track with
    | Some d -> d
    | None ->
        let d = ref 0 in
        Hashtbl.add depths track d;
        d
  in
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i (e : T.event) ->
      if i > 0 then Format.pp_print_cut ppf ();
      let d = depth e.track in
      let indent, marker =
        match e.kind with
        | T.Begin ->
            let ind = !d in
            incr d;
            (ind, "+")
        | T.End ->
            if !d > 0 then decr d;
            (!d, "-")
        | T.Instant -> (!d, ".")
        | T.Flow_start -> (!d, ">")
        | T.Flow_end -> (!d, "<")
      in
      Format.fprintf ppf "%6d  %-9s %s%s %s%a" e.lclock
        (track_label e.track)
        (String.make (2 * indent) ' ')
        marker e.name pp_args e.args)
    events;
  Format.pp_close_box ppf ()

let pp_stats ppf events =
  let module M = Map.Make (String) in
  let module S = Set.Make (Int) in
  let total = List.length events in
  let kinds = Array.make 5 0 in
  let kind_index = function
    | T.Begin -> 0
    | T.End -> 1
    | T.Instant -> 2
    | T.Flow_start -> 3
    | T.Flow_end -> 4
  in
  let names, tracks, lo, hi =
    List.fold_left
      (fun (names, tracks, lo, hi) (e : T.event) ->
        kinds.(kind_index e.kind) <- kinds.(kind_index e.kind) + 1;
        ( M.update e.name
            (function None -> Some 1 | Some c -> Some (c + 1))
            names,
          S.add e.track tracks,
          Stdlib.min lo e.lclock,
          Stdlib.max hi e.lclock ))
      (M.empty, S.empty, max_int, min_int)
      events
  in
  Format.fprintf ppf "@[<v>events: %d@," total;
  Format.fprintf ppf "kinds: begin=%d end=%d instant=%d flow_start=%d flow_end=%d@,"
    kinds.(0) kinds.(1) kinds.(2) kinds.(3) kinds.(4);
  if total > 0 then begin
    Format.fprintf ppf "tracks: %s@,"
      (String.concat " " (List.map track_label (S.elements tracks)));
    Format.fprintf ppf "lclock: %d..%d@," lo hi
  end;
  M.iter (fun name c -> Format.fprintf ppf "  %-32s %d@," name c) names;
  (match check_spans events with
  | Ok () -> Format.fprintf ppf "spans: balanced"
  | Error e -> Format.fprintf ppf "spans: MALFORMED (%s)" e);
  Format.pp_close_box ppf ()
