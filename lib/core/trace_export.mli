(** Serialize {!Obs.Tracer} event lists as versioned Chrome trace-event
    JSON (schema ["rbvc-trace/1"]) via {!Persist}, loadable directly in
    Perfetto ([ui.perfetto.dev]) or [chrome://tracing].

    The mapping is purely logical: each event's [ts] is its position in
    the list (so "time" is causal order and a span's duration is the
    number of events it encloses), tracks become named threads under one
    process ([tid 0] = "scheduler" for track [-1], [tid p+1] = ["p<p>"]
    for process [p]), and the original logical clock rides along as the
    ["lc"] argument. [Begin]/[End] map to phases ["B"]/["E"],
    [Instant] to ["i"], and [Flow_start]/[Flow_end] to the flow phases
    ["s"]/["f"] whose [id] is the event's [("flow", Int _)] argument —
    Perfetto renders them as send→deliver arrows between process
    tracks. Output is deterministic: no wall-clock field exists
    anywhere, so a trace of a deterministic execution is byte-identical
    at any [--jobs] value. *)

val schema : string
(** ["rbvc-trace/1"]. *)

val to_json :
  ?meta:(string * Persist.json) list ->
  ?labels:(int * string) list ->
  Obs.Tracer.event list ->
  Persist.json
(** [{ "schema": "rbvc-trace/1", "meta": {..}, "traceEvents": [..] }].
    [meta] is free-form run context (seed, parameters, dropped-event
    count); keep it jobs-independent if byte-identical output matters.
    [labels] overrides the default track naming (track id → thread
    name) — the serve daemon names its tracks ["ingress"],
    ["shard0"], ["shard0/engine"], … this way. *)

val of_json : Persist.json -> (Obs.Tracer.event list, string) result
(** Parse a trace back into events ({!to_json} round-trips exactly;
    thread-name metadata records are skipped). *)

val write :
  ?meta:(string * Persist.json) list ->
  ?labels:(int * string) list ->
  string ->
  Obs.Tracer.event list ->
  unit
(** Write [to_json events] to a file path, newline terminated. *)

val read : string -> (Obs.Tracer.event list, string) result
(** Load a trace file written by {!write}. *)

val read_labeled :
  string -> (Obs.Tracer.event list * (int * string) list, string) result
(** {!read}, also recovering the per-track labels from the trace's
    thread-name metadata — the input shape {!merge} wants. *)

val merge :
  (string * Obs.Tracer.event list * (int * string) list) list ->
  Obs.Tracer.event list * (int * string) list
(** Stitch per-process dumps — [(part name, events, labels)] — into
    one trace. Each part's tracks are remapped into a disjoint block
    of the global track space with labels prefixed ["part/"]; flow ids
    are shared verbatim, which is how cross-process arrows (a client's
    rpc send landing on the server's ingress track) connect. The
    streams are interleaved so every cross-part flow is emitted
    send-before-delivery — the order the position-based [ts] and
    Chrome's flow renderer need — while each part's internal order is
    untouched, so the merged trace passes {!check_spans} whenever the
    parts do. Dangling or cyclic cross-part flows are forced through
    rather than dropped. *)

val check_spans : Obs.Tracer.event list -> (unit, string) result
(** Structural well-formedness: on every track, each [End] closes a
    matching open [Begin] of the same name with a non-decreasing
    logical clock, and no span is left open at the end of the trace. *)

val pp_timeline : Format.formatter -> Obs.Tracer.event list -> unit
(** Compact text timeline: one line per event, spans indented by
    nesting depth within their track. *)

val pp_stats : Format.formatter -> Obs.Tracer.event list -> unit
(** Summary: event/kind totals, per-name counts, tracks, logical-clock
    range, and the {!check_spans} verdict. *)
