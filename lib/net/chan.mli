(** Bounded blocking queue with first-class failure, shared by the
    {!Node} runner (per-peer frame queues) and the {!Serve} daemon
    (per-shard job queues). *)

type 'a t

val make : int -> 'a t
(** [make cap]: blocks producers at [cap] queued items. *)

val push : 'a t -> 'a -> unit
(** Blocks while full. Raises [Failure] once the channel is
    {!fail}ed. *)

val pop : 'a t -> 'a
(** Blocks while empty. Items queued before a {!fail} still drain;
    raises [Failure] once the channel is failed {e and} empty. *)

val fail : 'a t -> string -> unit
(** Poison the channel: wake everyone, make blocked and future
    operations raise [Failure msg] (first message wins). Idempotent. *)
