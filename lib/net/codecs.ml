(* Wire codecs for the engine protocols that run under lock-step rounds,
   packed with everything a host needs to run one: the protocol value,
   its codec, the round count, and a renderer from final states to a
   decision-vector JSON. One registry shared by the serve daemon, the
   CLI and the equivalence tests, so all three agree on construction —
   the same (proto, seed, n, f, d, rounds) names the same run
   everywhere. *)

open Persist

let ( let* ) = Result.bind

(* ---------------- om / algo-exact entries ---------------- *)

let om_entry_to_json enc_v (e : _ Om.entry) =
  Obj
    [
      ("c", Int e.Om.commander);
      ("p", List (List.map (fun p -> Int p) e.Om.path));
      ("v", enc_v e.Om.value);
    ]

let om_entry_of_json dec_v j =
  let* commander = Wire.int_field "c" j in
  let* path = Wire.list_field "p" j in
  let* path = Wire.list_dec Wire.int_of_json path in
  let* v = Wire.field "v" j in
  let* value = dec_v v in
  Ok { Om.commander; path; value }

let om_msg_codec ~proto enc_v dec_v =
  Wire.codec ~proto
    ~enc:(fun entries -> List (List.map (om_entry_to_json enc_v) entries))
    ~dec:(function
      | List items -> Wire.list_dec (om_entry_of_json dec_v) items
      | _ -> Error "om message must be an array of entries")

(* ---------------- bracha messages ---------------- *)

let bracha_msg_to_json = function
  | Bracha.Initial { originator; value } ->
      Obj [ ("k", String "initial"); ("o", Int originator); ("v", Int value) ]
  | Bracha.Echo { originator; value } ->
      Obj [ ("k", String "echo"); ("o", Int originator); ("v", Int value) ]
  | Bracha.Ready { originator; value } ->
      Obj [ ("k", String "ready"); ("o", Int originator); ("v", Int value) ]

let bracha_msg_of_json j =
  let* k = Wire.string_field "k" j in
  let* originator = Wire.int_field "o" j in
  let* value = Wire.int_field "v" j in
  match k with
  | "initial" -> Ok (Bracha.Initial { originator; value })
  | "echo" -> Ok (Bracha.Echo { originator; value })
  | "ready" -> Ok (Bracha.Ready { originator; value })
  | _ -> Error (Printf.sprintf "unknown bracha message kind %S" k)

(* ---------------- iterative messages ---------------- *)

let iter_msg_to_json (round, x) =
  Obj [ ("r", Int round); ("x", Wire.vec_to_json x) ]

let iter_msg_of_json j =
  let* round = Wire.int_field "r" j in
  let* xj = Wire.field "x" j in
  let* x = Wire.vec_of_json xj in
  Ok (round, x)

(* ---------------- the packed registry ---------------- *)

type packed =
  | P : {
      name : string;
      n : int;
      rounds : int;
      topology : Topology.t option;
      protocol : ('s, 'm, 'o) Protocol.t;
      codec : 'm Wire.codec;
      render : 's array -> Persist.json;
    }
      -> packed

let names = [ "om"; "bracha"; "algo-exact"; "algo-iterative"; "algo-bcc" ]

(* Construction mirrors the CLI's model-checking targets (check_target
   in bin/rbvc_cli.ml): the seed determines commander values / inputs /
   the random instance the same way, so a served run is comparable with
   the simulated and model-checked ones. *)
let make ?topology ~proto ~seed ~n ~f ~d ~rounds () =
  (* Om.protocol itself only needs 0 <= f < n to run, but Byzantine
     agreement is impossible below n = 3f + 1 — a service should reject
     a doomed configuration up front, as Bracha.protocol already does. *)
  if f > 0 && n < (3 * f) + 1 then
    invalid_arg
      (Printf.sprintf "infeasible: n = %d < 3f + 1 = %d" n ((3 * f) + 1));
  let topology =
    match topology with
    | Some t when not (Topology.is_complete t) -> Some t
    | _ -> None
  in
  (* The broadcast-based protocols relay through every process and are
     only correct on the complete graph; the iterative family is the one
     designed for incomplete graphs (its constructor checks the
     arXiv:1307.2483 feasibility condition). *)
  if topology <> None && proto <> "algo-iterative" then
    invalid_arg
      (Printf.sprintf
         "infeasible: protocol %S requires the complete communication graph \
          (only algo-iterative runs on an incomplete topology)"
         proto);
  match proto with
  | "om" ->
      let v = 7 + (seed mod 89) in
      let protocol =
        Om.protocol ~n ~f ~commanders:[ (0, v) ] ~default:0
          ~compare:Int.compare
      in
      Ok
        (P
           {
             name = proto;
             n;
             topology;
             rounds = f + 1;
             protocol;
             codec =
               om_msg_codec ~proto
                 (fun v -> Int v)
                 Wire.int_of_json;
             render =
               (fun states ->
                 List
                   (Array.to_list states
                   |> List.map (fun st ->
                          let row = protocol.Protocol.output st in
                          List (Array.to_list row |> List.map (fun v -> Int v)))));
           })
  | "bracha" ->
      let inputs = Array.init n (fun i -> seed + i) in
      let protocol = Bracha.protocol ~n ~f ~inputs ~compare:Int.compare in
      Ok
        (P
           {
             name = proto;
             n;
             topology;
             rounds = max 1 rounds;
             protocol;
             codec =
               Wire.codec ~proto ~enc:bracha_msg_to_json
                 ~dec:bracha_msg_of_json;
             render =
               (fun states ->
                 List
                   (Array.to_list states
                   |> List.map (fun st ->
                          let row = protocol.Protocol.output st in
                          List
                            (Array.to_list row
                            |> List.map (function
                                 | None -> Null
                                 | Some v -> Int v)))));
           })
  | "algo-exact" ->
      let inst = Problem.random_instance (Rng.create seed) ~n ~f ~d ~faulty:[] in
      let protocol = Algo_exact.protocol inst ~validity:Problem.Standard in
      Ok
        (P
           {
             name = proto;
             n;
             topology;
             rounds = f + 1;
             protocol;
             codec = om_msg_codec ~proto Wire.vec_to_json Wire.vec_of_json;
             render =
               (fun states ->
                 List
                   (Array.to_list states
                   |> List.map (fun st ->
                          match protocol.Protocol.output st with
                          | None -> Null
                          | Some (point, delta) ->
                              Obj
                                [
                                  ("point", Wire.vec_to_json point);
                                  ("delta", Wire.float_to_json delta);
                                ])));
           })
  | "algo-iterative" ->
      let inst = Problem.random_instance (Rng.create seed) ~n ~f ~d ~faulty:[] in
      let rounds = max 1 rounds in
      let protocol = Algo_iterative.protocol ?topology inst ~rounds in
      Ok
        (P
           {
             name = proto;
             n;
             topology;
             (* under lock-step rounds every engine round completes one
                iteration; one extra round lets the last advance land *)
             rounds = rounds + 1;
             protocol;
             codec =
               Wire.codec ~proto ~enc:iter_msg_to_json ~dec:iter_msg_of_json;
             render =
               (fun states ->
                 List
                   (Array.to_list states
                   |> List.map (fun st ->
                          Wire.vec_to_json (protocol.Protocol.output st))));
           })
  | "algo-bcc" ->
      let inst = Problem.random_instance (Rng.create seed) ~n ~f ~d ~faulty:[] in
      let protocol = Algo_bcc.protocol inst in
      Ok
        (P
           {
             name = proto;
             n;
             topology;
             rounds = f + 1;
             protocol;
             codec = om_msg_codec ~proto Wire.vec_to_json Wire.vec_of_json;
             render =
               (fun states ->
                 List
                   (Array.to_list states
                   |> List.map (fun st ->
                          match protocol.Protocol.output st with
                          | None -> Null
                          | Some dec ->
                              Obj
                                [
                                  ( "verts",
                                    List
                                      (List.map Wire.vec_to_json
                                         dec.Algo_bcc.verts) );
                                  ("point", Wire.vec_to_json dec.Algo_bcc.point);
                                  ("exact", Bool dec.Algo_bcc.exact);
                                ])));
           })
  | other ->
      Error
        (Printf.sprintf "unknown protocol %S (expected %s)" other
           (String.concat " | " names))

let make_checked ?topology ~proto ~seed ~n ~f ~d ~rounds () =
  (* protocol constructors validate (n, f, d) with Invalid_argument;
     a service turns that into an error response, not a crash *)
  match make ?topology ~proto ~seed ~n ~f ~d ~rounds () with
  | exception Invalid_argument msg -> Error msg
  | r -> r

let engine_decisions (P p) =
  let outcome =
    Engine.run ?topology:p.topology ~n:p.n ~protocol:p.protocol
      ~scheduler:Scheduler.Rounds ~limit:p.rounds ()
  in
  p.render outcome.Engine.states

let cluster_decisions ?queue_cap ?(transport = `Tcp) (P p) =
  let states =
    match transport with
    | `Tcp ->
        Node.cluster_tcp ?queue_cap ?topology:p.topology ~protocol:p.protocol
          ~codec:p.codec ~n:p.n ~rounds:p.rounds ()
    | `Mem ->
        Node.cluster_mem ?queue_cap ?topology:p.topology ~protocol:p.protocol
          ~codec:p.codec ~n:p.n ~rounds:p.rounds ()
  in
  p.render states
