(* Lock-step execution of an engine protocol over real transport links.

   The runner replicates [Engine.run ~scheduler:Rounds] with [Fault.none]
   exactly: carry is seeded by [on_start]; each round's outbox is
   [carry @ on_tick ~time:round]; every destination receives its whole
   round batch as [(source, payload)] pairs in ascending source order
   (self-sends in place, a source's messages in outbox order); and
   [on_receive ~time:round] runs unconditionally every round, empty
   batch included. The round barrier is the wire itself: one frame per
   (round, edge), sent even when the payload batch is empty, so a node
   cannot start round [r + 1] before every peer has finished round [r].
   Decision vectors are therefore byte-identical to the simulator's on
   the same protocol value. *)

let default_queue_cap = 64

(* ---------------- frames ---------------- *)

(* The topology rides the hello as its canonical hash — absent on the
   complete graph, so complete-graph frames are byte-identical to the
   pre-topology wire format and old peers interoperate. *)
let hello_frame ~proto ~src ~rounds ~topo_hash =
  Persist.Obj
    ([
       ("t", Persist.String "hello");
       ("proto", Persist.String proto);
       ("src", Persist.Int src);
       ("rounds", Persist.Int rounds);
     ]
    @
    match topo_hash with
    | None -> []
    | Some h -> [ ("topo", Persist.Int h) ])

let batch_frame ~round payloads =
  Persist.Obj
    [
      ("t", Persist.String "batch");
      ("round", Persist.Int round);
      ("msgs", Persist.List payloads);
    ]

let check_hello ~codec ~peer ~rounds ~topo_hash json =
  let ( let* ) = Result.bind in
  let* t = Wire.string_field "t" json in
  if t <> "hello" then Error (Printf.sprintf "expected hello, got %S" t)
  else
    let* proto = Wire.string_field "proto" json in
    let* src = Wire.int_field "src" json in
    let* r = Wire.int_field "rounds" json in
    let peer_topo =
      match Persist.member "topo" json with
      | Some (Persist.Int h) -> Some h
      | _ -> None
    in
    if proto <> codec.Wire.proto then
      Error
        (Printf.sprintf "protocol mismatch: peer runs %S, we run %S" proto
           codec.Wire.proto)
    else if src <> peer then
      Error (Printf.sprintf "peer identity mismatch: expected %d, got %d" peer src)
    else if r <> rounds then
      Error
        (Printf.sprintf "round-count mismatch: peer runs %d rounds, we run %d" r
           rounds)
    else if peer_topo <> topo_hash then
      let pp = function None -> "complete" | Some h -> Printf.sprintf "%#x" h in
      Error
        (Printf.sprintf "topology mismatch: peer graph %s, ours %s"
           (pp peer_topo) (pp topo_hash))
    else Ok ()

let parse_batch ~codec ~round json =
  let ( let* ) = Result.bind in
  let* t = Wire.string_field "t" json in
  if t <> "batch" then Error (Printf.sprintf "expected batch, got %S" t)
  else
    let* r = Wire.int_field "round" json in
    if r <> round then
      Error (Printf.sprintf "round skew: expected round %d, got %d" round r)
    else
      let* payloads = Wire.list_field "msgs" json in
      Wire.list_dec codec.Wire.dec payloads

(* ---------------- per-node runner ---------------- *)

let run ?(queue_cap = default_queue_cap) ?trace_ctx ?topology ~protocol ~codec
    ~links ~me ~rounds () =
  let n = Array.length links in
  if me < 0 || me >= n then invalid_arg "Node.run: me out of range";
  if rounds < 0 then invalid_arg "Node.run: rounds must be >= 0";
  let topo =
    match topology with
    | Some t when not (Topology.is_complete t) ->
        if Topology.n t <> n then
          invalid_arg
            (Printf.sprintf
               "Node.run: topology is over %d processes, cluster has %d"
               (Topology.n t) n);
        Some t
    | _ -> None
  in
  let adjacent j =
    j <> me && match topo with None -> true | Some t -> Topology.adjacent t me j
  in
  let topo_hash = Option.map Topology.hash topo in
  (* Links exist exactly for the real edges: a node neither holds a
     socket to a peer it cannot talk to nor misses one it can. *)
  Array.iteri
    (fun j l ->
      match (adjacent j, l) with
      | _, Some _ when j = me -> invalid_arg "Node.run: link to self"
      | true, None when rounds > 0 ->
          invalid_arg (Printf.sprintf "Node.run: missing link to peer %d" j)
      | false, Some _ when j <> me ->
          invalid_arg
            (Printf.sprintf "Node.run: link to non-adjacent peer %d" j)
      | _ -> ())
    links;
  let state = protocol.Protocol.init ~me in
  (* Outgoing: one bounded queue + sender thread per peer, so a slow
     peer backpressures only its own edge. [None] ends the sender. *)
  let outq = Array.map (fun _ -> Chan.make queue_cap) links in
  (* Incoming: one queue + receiver thread per peer. The receiver
     validates the hello, then forwards each round's decoded batch. *)
  let inq = Array.map (fun _ -> Chan.make queue_cap) links in
  let sender j link =
    Thread.create
      (fun () ->
        let rec loop () =
          match Chan.pop outq.(j) with
          | None -> ()
          | Some frame ->
              link.Transport.send ?ctx:trace_ctx frame;
              loop ()
        in
        try loop ()
        with e ->
          (* surface the failure where the main loop blocks next:
             both on its next push to this edge and on its next pop *)
          let msg =
            Printf.sprintf "Node.run: send to peer %d failed: %s" j
              (Printexc.to_string e)
          in
          Chan.fail outq.(j) msg;
          Chan.fail inq.(j) msg)
      ()
  in
  let receiver j link =
    Thread.create
      (fun () ->
        let fail msg =
          Chan.fail inq.(j) (Printf.sprintf "Node.run: peer %d: %s" j msg)
        in
        let read_one k =
          match link.Transport.recv () with
          | Error e -> Error (Format.asprintf "%a" Wire.pp_read_error e)
          | Ok (json, ctx) -> Result.map (fun v -> (v, ctx)) (k json)
        in
        match read_one (check_hello ~codec ~peer:j ~rounds ~topo_hash) with
        | Error msg -> fail msg
        | Ok ((), _) -> (
            try
              for round = 0 to rounds - 1 do
                match read_one (parse_batch ~codec ~round) with
                | Error msg ->
                    fail msg;
                    raise Exit
                | Ok (msgs, ctx) -> Chan.push inq.(j) (msgs, ctx)
              done
            with Exit -> ()))
      ()
  in
  let senders = ref [] and receivers = ref [] in
  Array.iteri
    (fun j l ->
      Option.iter
        (fun link ->
          senders := sender j link :: !senders;
          receivers := receiver j link :: !receivers)
        l)
    links;
  let finish () =
    (* senders first (flush + terminate), then close the links, which
       unblocks any receiver still parked in recv on an error path *)
    Array.iteri
      (fun j l -> if l <> None then try Chan.push outq.(j) None with _ -> ())
      links;
    List.iter Thread.join !senders;
    Array.iter (Option.iter (fun l -> l.Transport.close ())) links;
    List.iter Thread.join !receivers
  in
  Fun.protect ~finally:finish @@ fun () ->
  Array.iteri
    (fun j l ->
      if l <> None then
        Chan.push outq.(j)
          (Some (hello_frame ~proto:codec.Wire.proto ~src:me ~rounds ~topo_hash)))
    links;
  let carry = ref (protocol.Protocol.on_start state) in
  (* Trace-context adoption: the first peer context seen (and every
     change thereafter) is recorded on the caller's tracer, stitching
     this node's engine-round spans into the sender's distributed
     trace. Emitted from the main loop only — receiver threads share
     this domain's tracer slot and must not touch it. *)
  let adopted = ref trace_ctx in
  let adopt ~src ~round = function
    | Some c when !adopted <> Some c ->
        adopted := Some c;
        Obs.Tracer.instant ~lclock:round "ctx.adopt"
          [
            ("trace", Obs.Tracer.Int c.Wire.trace_id);
            ("span", Obs.Tracer.Int c.Wire.parent_span);
            ("src", Obs.Tracer.Int src);
          ]
    | _ -> ()
  in
  for round = 0 to rounds - 1 do
    let outbox =
      match !carry with
      | [] -> protocol.Protocol.on_tick state ~time:round
      | pending -> pending @ protocol.Protocol.on_tick state ~time:round
    in
    (* Partition by destination, preserving outbox order. *)
    let per_dst = Array.make n [] in
    List.iter
      (fun (dst, m) ->
        if dst < 0 || dst >= n then
          invalid_arg "Node.run: destination out of range";
        per_dst.(dst) <- m :: per_dst.(dst))
      outbox;
    let msgs_to dst = List.rev per_dst.(dst) in
    (* One frame per edge per round — empty batches included; the frame
       is the round barrier. Sends addressed to a non-adjacent peer are
       silently filtered here, exactly as the engine filters them. *)
    for dst = 0 to n - 1 do
      if links.(dst) <> None then
        Chan.push outq.(dst)
          (Some (batch_frame ~round (List.map codec.Wire.enc (msgs_to dst))))
    done;
    (* Assemble this round's inbox in ascending source order, own
       self-sends in place — exactly the engine's delivery order.
       Non-adjacent sources have no link and contribute nothing. *)
    let batch =
      List.concat_map
        (fun src ->
          let msgs =
            if src = me then msgs_to me
            else if links.(src) = None then []
            else begin
              let msgs, rctx = Chan.pop inq.(src) in
              adopt ~src ~round rctx;
              msgs
            end
          in
          List.map (fun m -> (src, m)) msgs)
        (List.init n Fun.id)
    in
    carry := protocol.Protocol.on_receive state ~time:round batch
  done;
  (* the final carry is dropped, as in the engine *)
  state

(* ---------------- loopback cluster harness ---------------- *)

(* The first frame on a fresh connection identifies the dialing peer, so
   the acceptor can place the link at the right index — TCP accept order
   is not deterministic. *)
let peer_frame i =
  Persist.Obj [ ("t", Persist.String "peer"); ("src", Persist.Int i) ]

let parse_peer ~n json =
  let ( let* ) = Result.bind in
  let* t = Wire.string_field "t" json in
  if t <> "peer" then Error (Printf.sprintf "expected peer, got %S" t)
  else
    let* src = Wire.int_field "src" json in
    if src < 0 || src >= n then Error "peer id out of range" else Ok src

let cluster (type a l c) ?queue_cap ?topology
    ~(transport : (module Transport.S with type address = a
                                       and type listener = l
                                       and type conn = c))
    ~(bind : a) ~protocol ~codec ~n ~rounds () =
  let module T = (val transport) in
  if n < 1 then invalid_arg "Node.cluster: n must be >= 1";
  let topo =
    match topology with
    | Some t when not (Topology.is_complete t) ->
        if Topology.n t <> n then
          invalid_arg
            (Printf.sprintf
               "Node.cluster: topology is over %d processes, cluster has %d"
               (Topology.n t) n);
        Some t
    | _ -> None
  in
  let adjacent i j =
    i <> j && match topo with None -> true | Some t -> Topology.adjacent t i j
  in
  (* All listeners exist before any node thread dials, so connects never
     race an unbound address; the kernel backlog holds early dials. *)
  let listeners = Array.init n (fun _ -> T.listen bind) in
  let addrs = Array.map T.address listeners in
  let states = Array.make n None in
  let errors = Array.make n None in
  let node i () =
    try
      let links = Array.make n None in
      (* dial every adjacent lower peer, announce ourselves *)
      for j = 0 to i - 1 do
        if adjacent i j then begin
          let link = T.link (T.connect addrs.(j)) in
          link.Transport.send (peer_frame i);
          links.(j) <- Some link
        end
      done;
      (* accept every adjacent higher peer, identified by its first
         frame — the graph fixes how many dials to expect *)
      let expected = ref 0 in
      for j = i + 1 to n - 1 do
        if adjacent i j then incr expected
      done;
      for _ = 1 to !expected do
        let link = T.link (T.accept listeners.(i)) in
        match link.Transport.recv () with
        | Error e ->
            failwith
              (Format.asprintf "Node.cluster: bad peer greeting: %a"
                 Wire.pp_read_error e)
        | Ok (json, _) -> (
            match parse_peer ~n json with
            | Error msg -> failwith ("Node.cluster: " ^ msg)
            | Ok src ->
                if src <= i || links.(src) <> None || not (adjacent i src)
                then failwith "Node.cluster: duplicate peer greeting";
                links.(src) <- Some link)
      done;
      T.close_listener listeners.(i);
      states.(i) <-
        Some
          (run ?queue_cap ?topology:topo ~protocol ~codec ~links ~me:i ~rounds
             ())
    with e -> errors.(i) <- Some (Printexc.to_string e)
  in
  let threads = Array.init n (fun i -> Thread.create (node i) ()) in
  Array.iter Thread.join threads;
  Array.iter (fun l -> try T.close_listener l with _ -> ()) listeners;
  (match
     Array.to_list errors
     |> List.mapi (fun i e -> (i, e))
     |> List.filter_map (fun (i, e) ->
            Option.map (fun m -> Printf.sprintf "node %d: %s" i m) e)
   with
  | [] -> ()
  | errs -> failwith ("Node.cluster: " ^ String.concat "; " errs));
  Array.map (fun s -> Option.get s) states

let cluster_tcp ?queue_cap ?topology ~protocol ~codec ~n ~rounds () =
  cluster ?queue_cap ?topology
    ~transport:(module Transport.Tcp)
    ~bind:("127.0.0.1", 0) ~protocol ~codec ~n ~rounds ()

let cluster_mem ?queue_cap ?topology ~protocol ~codec ~n ~rounds () =
  cluster ?queue_cap ?topology
    ~transport:(module Transport.Mem)
    ~bind:"" ~protocol ~codec ~n ~rounds ()
