(** The rbvc consensus service: [rbvc serve] hosts many concurrent
    consensus instances behind the {!Wire} frame protocol, sharded by
    instance key across worker domains, with a live metrics endpoint
    and graceful shutdown; {!submit} / {!shutdown} are the matching
    client calls ([rbvc submit]).

    One TCP connection carries any number of pipelined requests; each
    request names an instance key and a [(proto, seed, n, f, d, rounds)]
    tuple from the {!Codecs} registry, and its response carries the
    decision vector the deterministic engine produced — identical to a
    local [Engine.run ~scheduler:Rounds] at the same parameters.
    Requests for the same key serialize on one shard (per-instance
    ordering); distinct keys run in parallel across shards.

    The worker-domain count follows the lib/par convention
    ([RBVC_JOBS] / recommended domains, capped at 8) but the workers
    are dedicated domains, not the [Par] pool: [Par] is built for batch
    fan-out that joins, a server needs resident loops.

    {2 Telemetry}

    Worker domains record into one mutex-protected registry (the [Obs]
    per-domain sinks assume snapshotting only between joined batches,
    which a live endpoint cannot guarantee). Beyond the original
    counters and power-of-two histograms, the registry keeps wall-clock
    request-latency histograms with {!Obs.default_wall_bounds}
    boundaries — overall ([serve.latency]), per protocol
    ([serve.latency.<proto>]) and queue wait ([serve.queue_wait]) —
    plus per-shard queue-depth and busy-shard gauges sampled on every
    enqueue/dequeue, and a bounded flight recorder of the last slow
    requests. Wall-clock series are nondeterministic by nature and
    stay segregated from the deterministic simulator metrics exactly
    as span durations are.

    The stats endpoint speaks minimal but well-formed HTTP/1.0 (GET and
    HEAD; Content-Type / Content-Length / Connection: close on every
    response; real 404s) with four routes: [/] serves the
    rbvc-metrics/1 JSON document (so [curl | rbvc validate] still
    accepts it), [/metrics] the Prometheus text exposition
    ([Metrics.to_prometheus]), [/healthz] returns [200 ready] or
    [503 draining] during graceful shutdown (the endpoint stays up
    through the drain), and [/slow] dumps the flight-recorder ring.

    {2 Tracing}

    With [trace_path] set, the daemon records a server-side trace:
    reader threads share the accepting domain's tracer slot, so events
    go through an explicit mutex-protected buffer instead — ingress
    events on their own track, one request span per shard track, and
    each request's engine events collected on the worker domain and
    absorbed with remapped tracks, clocks and flow ids. A {!submit}
    call made under an installed {!Obs.Tracer} stamps every request
    frame with a {!Wire.ctx} whose flow ids the server reuses, so the
    client dump and the server dump stitch into one Chrome trace with
    client→ingress→shard→engine arrows via [Trace_export.merge]. *)

type config = {
  host : string;
  port : int;  (** 0 = ephemeral; read the real one via [on_ready] *)
  stats_port : int option;  (** [None] = no stats endpoint; 0 = ephemeral *)
  shards : int;  (** 0 = lib/par default, capped at 8 *)
  queue_cap : int;  (** per-shard job-queue bound *)
  max_frame : int;
  slow_us : int;
      (** requests at or above this latency (µs) enter the flight
          recorder *)
  flight_cap : int;  (** flight-recorder ring size *)
  trace_path : string option;
      (** write the server-side trace here on shutdown *)
}

val default_config : config
(** 127.0.0.1, ephemeral port, no stats endpoint, default shards,
    queue cap 256, {!Wire.default_max_frame}, slow threshold 1000µs,
    flight ring 64, no trace. *)

val run :
  ?signals:bool ->
  ?on_ready:(port:int -> stats_port:int option -> unit) ->
  config ->
  unit
(** Run the daemon; blocks until a shutdown request or (with [signals],
    the default) SIGINT/SIGTERM, then drains queued jobs — their
    responses still go out — before closing client connections. The
    stats endpoint keeps answering through the drain ([/healthz] says
    [draining]) and closes last. [on_ready] fires once the sockets are
    bound, with the actual ports. Tests pass [~signals:false] and stop
    it via {!shutdown}. *)

(** {1 Client} *)

type request = {
  key : string;  (** instance key — the sharding unit *)
  proto : string;  (** a {!Codecs.names} entry *)
  seed : int;
  n : int;
  f : int;
  d : int;
  rounds : int;
  topology : string;
      (** a {!Topology.spec_of_string} spec, ["complete"] for the
          default graph (left off the wire frame, keeping it
          byte-identical to the pre-topology format). Malformed specs
          and specs infeasible at this [n] — including the
          arXiv:1307.2483 condition checked by algo-iterative, and any
          non-complete graph on a broadcast-based protocol — are
          rejected with a structured error response, never a
          backtrace. *)
}

val topology_of : request -> (Topology.t option, string) result
(** Parse and instantiate the request's topology spec at its [n] —
    the validation the daemon applies at ingress and again in the
    worker. [Ok None] means the complete graph (including an explicit
    ["complete"] spec), so callers hand the result straight to
    {!Codecs.make_checked}'s [?topology]. *)

type response = {
  id : int;  (** matches the request's position in the submitted list *)
  r_key : string;
  ok : bool;
  shard : int;  (** shard that ran it; [-1] on error responses *)
  decisions : Persist.json option;
  error : string option;
}

val submit :
  ?host:string -> port:int -> request list -> (response list, string) result
(** Pipeline every request on one connection and collect the responses
    (the daemon interleaves shards, so they return out of order),
    sorted back into request order. When a tracer is installed on the
    calling domain ({!Obs.Tracer.with_tracer}), each request frame
    carries a {!Wire.ctx} ([trace_id = 1024 + 4*id]) and the client
    emits submit instants plus rpc/resp flow events that stitch
    against a server trace recorded with [trace_path]. *)

val shutdown : ?host:string -> port:int -> unit -> (unit, string) result
(** Ask the daemon to stop gracefully. *)

val fetch :
  ?host:string -> port:int -> string -> (string, string) result
(** [fetch ~port path] HTTP-GETs [path] from the stats endpoint and
    returns the response body. Every malformed shape — no status line,
    unparsable code, missing header terminator, body shorter than
    Content-Length, non-200 status — comes back as [Error] with
    context, never as an exception. *)

val fetch_stats :
  ?host:string -> port:int -> unit -> (Persist.json, string) result
(** {!fetch} [/] and parse the metrics JSON body. *)
