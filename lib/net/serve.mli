(** The rbvc consensus service: [rbvc serve] hosts many concurrent
    consensus instances behind the {!Wire} frame protocol, sharded by
    instance key across worker domains, with a live metrics endpoint
    and graceful shutdown; {!submit} / {!shutdown} are the matching
    client calls ([rbvc submit]).

    One TCP connection carries any number of pipelined requests; each
    request names an instance key and a [(proto, seed, n, f, d, rounds)]
    tuple from the {!Codecs} registry, and its response carries the
    decision vector the deterministic engine produced — identical to a
    local [Engine.run ~scheduler:Rounds] at the same parameters.
    Requests for the same key serialize on one shard (per-instance
    ordering); distinct keys run in parallel across shards.

    The worker-domain count follows the lib/par convention
    ([RBVC_JOBS] / recommended domains, capped at 8) but the workers
    are dedicated domains, not the [Par] pool: [Par] is built for batch
    fan-out that joins, a server needs resident loops. Worker domains
    record into one mutex-protected registry (the [Obs] per-domain
    sinks assume snapshotting only between joined batches, which a live
    endpoint cannot guarantee); the stats endpoint synthesizes an
    {!Obs.snapshot} from it and serves [Metrics.to_json] over minimal
    HTTP, so [curl | rbvc validate] accepts the payload as an ordinary
    rbvc-metrics/1 document. *)

type config = {
  host : string;
  port : int;  (** 0 = ephemeral; read the real one via [on_ready] *)
  stats_port : int option;  (** [None] = no stats endpoint; 0 = ephemeral *)
  shards : int;  (** 0 = lib/par default, capped at 8 *)
  queue_cap : int;  (** per-shard job-queue bound *)
  max_frame : int;
}

val default_config : config
(** 127.0.0.1, ephemeral port, no stats endpoint, default shards,
    queue cap 256, {!Wire.default_max_frame}. *)

val run :
  ?signals:bool ->
  ?on_ready:(port:int -> stats_port:int option -> unit) ->
  config ->
  unit
(** Run the daemon; blocks until a shutdown request or (with [signals],
    the default) SIGINT/SIGTERM, then drains queued jobs — their
    responses still go out — before closing client connections.
    [on_ready] fires once the sockets are bound, with the actual
    ports. Tests pass [~signals:false] and stop it via {!shutdown}. *)

(** {1 Client} *)

type request = {
  key : string;  (** instance key — the sharding unit *)
  proto : string;  (** a {!Codecs.names} entry *)
  seed : int;
  n : int;
  f : int;
  d : int;
  rounds : int;
}

type response = {
  id : int;  (** matches the request's position in the submitted list *)
  r_key : string;
  ok : bool;
  shard : int;  (** shard that ran it; [-1] on error responses *)
  decisions : Persist.json option;
  error : string option;
}

val submit :
  ?host:string -> port:int -> request list -> (response list, string) result
(** Pipeline every request on one connection and collect the responses
    (the daemon interleaves shards, so they return out of order),
    sorted back into request order. *)

val shutdown : ?host:string -> port:int -> unit -> (unit, string) result
(** Ask the daemon to stop gracefully. *)

val fetch_stats :
  ?host:string -> port:int -> unit -> (Persist.json, string) result
(** HTTP-GET the stats endpoint and parse the metrics JSON body. *)
