(** Transport abstraction: the same framed-JSON channel over real Unix
    TCP sockets ({!Tcp}) or in-process queues ({!Mem}).

    Everything above this module — the lock-step {!Node} runner, the
    {!Serve} daemon — programs against {!link}, a duplex frame channel,
    so protocol code is byte-for-byte identical over loopback TCP and
    the in-memory transport the unit tests use. {!Mem} still passes
    every frame through {!Wire.encode}/{!Wire.decode}, so it exercises
    the framing and codec layers exactly as TCP does; only the byte
    channel differs. *)

type link = {
  send : ?ctx:Wire.ctx -> Persist.json -> unit;
      (** Write one frame, optionally stamped with a trace context the
          peer can adopt. Atomic at the frame level (safe from multiple
          threads). Raises on a closed or broken channel. *)
  recv : unit -> (Persist.json * Wire.ctx option, Wire.read_error) result;
      (** Blocking read of one frame and its trace context, if the
          sender attached one. [`Eof] on clean close at a frame
          boundary. Single-reader: one thread per link. *)
  close : unit -> unit;  (** Idempotent. *)
}

module type S = sig
  type address
  type listener
  type conn

  val listen : address -> listener
  (** Bind and listen. TCP port 0 / Mem name [""] ask for a fresh
      address — read it back with {!address}. *)

  val address : listener -> address
  val accept : listener -> conn
  (** Blocks. Raises once the listener is closed. *)

  val connect : address -> conn
  val link : ?max_frame:int -> conn -> link
  val close_listener : listener -> unit
end

module Tcp :
  S with type address = string * int and type conn = Unix.file_descr
(** Real sockets: [(host, port)] addresses, [TCP_NODELAY] set on every
    connection (frames are latency-bound round barriers, not bulk).
    [conn] is the raw descriptor — the serve daemon's plain-HTTP stats
    endpoint reads it directly. *)

module Mem : S with type address = string
(** In-process: named rendezvous through a global registry, duplex
    queues underneath. Listener names are process-global; [""] generates
    a fresh one. *)
