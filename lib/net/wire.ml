(* Length-prefixed framing and the versioned wire codec, built on the
   repo's own Persist JSON. One frame = a fixed 10-byte header (4-byte
   magic "RBVC", 1 version byte, 1 flags byte, 4-byte big-endian body
   length) followed by the body: an optional 16-byte trace context
   (flags bit 0) and then the payload, the Persist serialization of one
   json value. The binary header carries the version so incompatible
   peers fail fast on the first frame, before any JSON is parsed; the
   trace context lives in the binary body prefix, not the JSON, so
   propagation costs nothing on untraced frames and never perturbs
   payload encodings. *)

let magic = "RBVC"
let version = 2
let header_len = 10
let ctx_len = 16
let flag_ctx = 0x01
let default_max_frame = 16 * 1024 * 1024

type ctx = { trace_id : int; parent_span : int }

type read_error = [ `Eof | `Corrupt of string ]

let pp_read_error ppf = function
  | `Eof -> Format.pp_print_string ppf "connection closed"
  | `Corrupt msg -> Format.pp_print_string ppf msg

(* ---------------- pure encode / decode ---------------- *)

let put_i64 b off v =
  let v = Int64.of_int v in
  for i = 0 to 7 do
    Bytes.set b (off + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v ((7 - i) * 8)) 0xFFL)))
  done

let get_i64 s off =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
  done;
  Int64.to_int !v

let encode ?ctx json =
  let payload = Persist.to_string json in
  let plen = String.length payload in
  let clen = match ctx with Some _ -> ctx_len | None -> 0 in
  let len = clen + plen in
  let b = Bytes.create (header_len + len) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr version);
  Bytes.set b 5 (Char.chr (match ctx with Some _ -> flag_ctx | None -> 0));
  Bytes.set b 6 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 7 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 8 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 9 (Char.chr (len land 0xff));
  (match ctx with
  | Some c ->
      put_i64 b header_len c.trace_id;
      put_i64 b (header_len + 8) c.parent_span
  | None -> ());
  Bytes.blit_string payload 0 b (header_len + clen) plen;
  Bytes.unsafe_to_string b

(* Returns (flags, body length). *)
let decode_header ?(max_frame = default_max_frame) h =
  if String.length h < header_len then Error (`Corrupt "truncated frame header")
  else if String.sub h 0 4 <> magic then Error (`Corrupt "bad frame magic")
  else if Char.code h.[4] <> version then
    Error
      (`Corrupt
        (Printf.sprintf "unsupported wire version %d (want %d)"
           (Char.code h.[4]) version))
  else
    let flags = Char.code h.[5] in
    if flags land lnot flag_ctx <> 0 then
      Error (`Corrupt (Printf.sprintf "unknown frame flags 0x%02x" flags))
    else
      let len =
        (Char.code h.[6] lsl 24)
        lor (Char.code h.[7] lsl 16)
        lor (Char.code h.[8] lsl 8)
        lor Char.code h.[9]
      in
      if len > max_frame then
        Error
          (`Corrupt
            (Printf.sprintf "oversized frame (%d > %d bytes)" len max_frame))
      else if flags land flag_ctx <> 0 && len < ctx_len then
        Error (`Corrupt "frame too short for trace context")
      else Ok (flags, len)

(* Split an already-read body into (ctx, payload view offset/len). *)
let decode_body flags body off len =
  if flags land flag_ctx <> 0 then
    let ctx =
      { trace_id = get_i64 body off; parent_span = get_i64 body (off + 8) }
    in
    (Some ctx, off + ctx_len, len - ctx_len)
  else (None, off, len)

let decode ?max_frame s =
  match decode_header ?max_frame s with
  | Error _ as e -> e
  | Ok (flags, len) ->
      if String.length s < header_len + len then
        Error (`Corrupt "truncated frame payload")
      else begin
        let ctx, poff, plen = decode_body flags s header_len len in
        match Persist.of_string (String.sub s poff plen) with
        | Error e -> Error (`Corrupt ("bad frame payload: " ^ e))
        | Ok json -> Ok (json, ctx, header_len + len)
      end

(* ---------------- file-descriptor IO ---------------- *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd b !off (len - !off) in
    if n = 0 then failwith "Wire.write_frame: short write";
    off := !off + n
  done

let write_frame ?ctx fd json = write_all fd (encode ?ctx json)

(* Read exactly [want] bytes; [`Eof] only when the connection closes on
   a frame boundary ([at_start]); mid-frame EOF is corruption. *)
let read_exact fd want ~at_start =
  let b = Bytes.create want in
  let off = ref 0 in
  let result = ref (Ok b) in
  (try
     while !off < want do
       let n = Unix.read fd b !off (want - !off) in
       if n = 0 then begin
         result :=
           if !off = 0 && at_start then Error `Eof
           else Error (`Corrupt "truncated frame");
         raise Exit
       end;
       off := !off + n
     done
   with Exit -> ());
  !result

let read_frame ?(max_frame = default_max_frame) fd =
  match read_exact fd header_len ~at_start:true with
  | Error _ as e -> e
  | Ok header -> (
      match decode_header ~max_frame (Bytes.unsafe_to_string header) with
      | Error _ as e -> e
      | Ok (flags, len) -> (
          match read_exact fd len ~at_start:false with
          | Error _ as e -> e
          | Ok body -> (
              let body = Bytes.unsafe_to_string body in
              let ctx, poff, plen = decode_body flags body 0 len in
              match Persist.of_string (String.sub body poff plen) with
              | Error e -> Error (`Corrupt ("bad frame payload: " ^ e))
              | Ok json -> Ok (json, ctx))))

(* ---------------- payload helpers ---------------- *)

(* Persist deliberately writes non-finite floats as null (JSON has no
   representation); wire payloads must round-trip every float exactly,
   so the values Persist cannot carry travel as tagged strings: the
   non-finite three, and negative zero (Persist prints it "-0", which
   reads back as [Int 0] — sign lost). *)
let float_to_json x =
  if Float.is_nan x then Persist.String "nan"
  else if x = Float.infinity then Persist.String "inf"
  else if x = Float.neg_infinity then Persist.String "-inf"
  else if x = 0. && 1. /. x < 0. then Persist.String "-0"
  else Persist.Float x

let float_of_json = function
  | Persist.Float x -> Ok x
  | Persist.Int i -> Ok (float_of_int i)
  | Persist.String "nan" -> Ok Float.nan
  | Persist.String "inf" -> Ok Float.infinity
  | Persist.String "-inf" -> Ok Float.neg_infinity
  | Persist.String "-0" -> Ok (-0.)
  | _ -> Error "expected a float"

let vec_to_json v =
  Persist.List (List.map float_to_json (Vec.to_list v))

let vec_of_json = function
  | Persist.List items ->
      let rec go acc = function
        | [] -> Ok (Vec.of_list (List.rev acc))
        | x :: tl -> (
            match float_of_json x with
            | Ok f -> go (f :: acc) tl
            | Error _ -> Error "vector entries must be floats")
      in
      go [] items
  | _ -> Error "expected a vector (array of floats)"

let int_of_json = function
  | Persist.Int i -> Ok i
  | _ -> Error "expected an int"

let field name j =
  match Persist.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name j = Result.bind (field name j) int_of_json

let string_field name j =
  match Persist.member name j with
  | Some (Persist.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" name)

let list_field name j =
  match Persist.member name j with
  | Some (Persist.List l) -> Ok l
  | _ -> Error (Printf.sprintf "missing array field %S" name)

(* ---------------- message codecs ---------------- *)

type 'm codec = {
  proto : string;  (** protocol name, checked in the hello exchange *)
  enc : 'm -> Persist.json;
  dec : Persist.json -> ('m, string) result;
}

let codec ~proto ~enc ~dec = { proto; enc; dec }

let map_result f = function Ok v -> Ok (f v) | Error _ as e -> e

let list_dec dec items =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: tl -> (
        match dec x with Ok v -> go (v :: acc) tl | Error _ as e -> e)
  in
  go [] items
