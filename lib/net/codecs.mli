(** Wire codecs for the round-based engine protocols, packed with
    everything a host needs to run one — the registry shared by the
    {!Serve} daemon, the CLI and the equivalence tests, so all three
    agree that the same [(proto, seed, n, f, d, rounds)] names the same
    run.

    Construction mirrors the CLI's model-checking targets: OM broadcasts
    [7 + seed mod 89] from commander 0, Bracha's inputs are
    [seed + i], the vector algorithms draw their instance from
    [Rng.create seed] — so a served decision is directly comparable with
    a simulated or model-checked one at the same parameters. *)

type packed =
  | P : {
      name : string;
      n : int;
      rounds : int;
          (** lock-step rounds to run — the engine [limit] and the
              networked round count, by construction equal *)
      topology : Topology.t option;
          (** the communication graph when not complete; threaded into
              {!engine_decisions} and {!cluster_decisions} so both hosts
              run the same graph *)
      protocol : ('s, 'm, 'o) Protocol.t;
      codec : 'm Wire.codec;
      render : 's array -> Persist.json;
          (** decision vector of the final states, via the protocol's
              output hook — the value the equivalence tests compare
              byte-for-byte across hosts *)
    }
      -> packed

val names : string list
(** [["om"; "bracha"; "algo-exact"; "algo-iterative"; "algo-bcc"]]. *)

val make :
  ?topology:Topology.t ->
  proto:string ->
  seed:int ->
  n:int ->
  f:int ->
  d:int ->
  rounds:int ->
  unit ->
  (packed, string) result
(** [rounds] is the iteration / delivery-round budget for the protocols
    parameterized by one (bracha, algo-iterative); the OM-phase
    protocols always run their [f + 1] relay rounds. A non-complete
    [topology] is accepted for ["algo-iterative"] only (whose
    constructor checks the arXiv:1307.2483 feasibility condition) — the
    broadcast-based protocols relay through every process and raise
    ["infeasible: ..."] on an incomplete graph, as they do on
    [n < 3f + 1]. Propagates the constructors' [Invalid_argument] on
    infeasible parameters — use {!make_checked} where a clean [Error]
    is needed. *)

val make_checked :
  ?topology:Topology.t ->
  proto:string ->
  seed:int ->
  n:int ->
  f:int ->
  d:int ->
  rounds:int ->
  unit ->
  (packed, string) result
(** {!make} with [Invalid_argument] converted to [Error]. *)

val engine_decisions : packed -> Persist.json
(** Run under [Engine.run ~scheduler:Rounds] and render the decision
    vector — the simulation side of the equivalence. *)

val cluster_decisions :
  ?queue_cap:int -> ?transport:[ `Tcp | `Mem ] -> packed -> Persist.json
(** Run the same protocol value over a loopback {!Node.cluster}
    (default real TCP sockets) and render the decision vector. *)
