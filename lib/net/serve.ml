(* The rbvc consensus service: a daemon hosting many concurrent
   consensus instances over the {!Wire} frame protocol, sharded by
   instance key across worker domains, with live metrics on an optional
   HTTP stats endpoint and graceful shutdown.

   Threading model: the main thread accepts; each client connection
   gets a reader thread that parses and validates requests and pushes
   jobs onto per-shard bounded queues; one worker *domain* per shard
   pops, runs the engine, and writes the response back on the client's
   link (frame-atomic sends). Per-key sharding means requests for the
   same key serialize on one shard — per-instance ordering — while
   distinct keys run genuinely in parallel. The shard count follows the
   lib/par convention (RBVC_JOBS / recommended_domain_count) but the
   workers are dedicated domains, not the Par pool: Par is built for
   batch fan-out that joins, a server needs resident loops.

   Stats: worker domains record into one mutex-protected registry (the
   Obs per-domain sinks assume snapshotting only between batches, which
   a live endpoint cannot guarantee); the endpoint synthesizes an
   {!Obs.snapshot} from it and serves [Metrics.to_json] at [/] and the
   Prometheus text rendering at [/metrics]. Wall-clock request latency
   goes into explicit-boundary wall histograms — nondeterministic by
   nature, and kept strictly apart from the deterministic simulator
   metrics (rbvc-metrics JSON segregates them behind the same flag as
   span timings).

   Tracing: reader threads all live on the accepting domain and so
   share its Obs.Tracer DLS slot — they must NOT touch the tracer.
   Server-side trace recording therefore goes through an explicit
   mutex-protected event buffer with one global logical clock; worker
   domains (whose DLS is private) run the engine under a collected
   tracer and absorb the events into the shared buffer with their
   tracks, clocks and flow ids remapped per shard and request. *)

open Persist

let ( let* ) = Result.bind

type config = {
  host : string;
  port : int;  (** 0 = ephemeral, reported via [on_ready] *)
  stats_port : int option;  (** 0 = ephemeral *)
  shards : int;
  queue_cap : int;
  max_frame : int;
  slow_us : int;
  flight_cap : int;
  trace_path : string option;
}

let default_shards () = max 1 (min 8 (Par.default_jobs ()))

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    stats_port = None;
    shards = 0 (* 0 = default_shards () at run time *);
    queue_cap = 256;
    max_frame = Wire.default_max_frame;
    slow_us = 1000;
    flight_cap = 64;
    trace_path = None;
  }

(* Request caps: the service is a host for the paper's small-n regimes,
   not a general job runner; reject anything that could wedge a shard. *)
let max_n = 128
let max_f = 8
let max_d = 64
let max_rounds = 4096
let max_key_len = 256

(* ---------------- stats registry ---------------- *)

type hist_acc = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : (int, int) Hashtbl.t;
}

(* Explicit-boundary wall-clock accumulator mirroring Obs's wall
   histograms ({!Obs.default_wall_bounds}), merged into the synthesized
   snapshot. *)
type wall_acc = {
  mutable wa_count : int;
  mutable wa_sum : float;
  mutable wa_min : float;
  mutable wa_max : float;
  wa_counts : int array;
}

(* One flight-recorder entry: a request that crossed the slow
   threshold, kept in a bounded ring and dumped on demand at [/slow]. *)
type flight = {
  fl_seq : int;
  fl_key : string;
  fl_proto : string;
  fl_shard : int;
  fl_us : int;
  fl_ok : bool;
}

type stats = {
  sm : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  hists : (string, hist_acc) Hashtbl.t;
  walls : (string, wall_acc) Hashtbl.t;
  keys : (string, unit) Hashtbl.t;
  mutable inflight : int;
  mutable seq : int;  (* requests enqueued, ever — the request seq *)
  queue_now : int array;  (* current depth per shard *)
  busy : bool array;  (* shard is mid-request *)
  flights : flight option array;  (* ring, [flight_cap] slots *)
  mutable fl_next : int;  (* total flights recorded, ever *)
}

let stats_make ~shards ~flight_cap =
  {
    sm = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
    walls = Hashtbl.create 8;
    keys = Hashtbl.create 64;
    inflight = 0;
    seq = 0;
    queue_now = Array.make shards 0;
    busy = Array.make shards false;
    flights = Array.make (max 1 flight_cap) None;
    fl_next = 0;
  }

let locked st f =
  Mutex.lock st.sm;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.sm) f

let counter_add st name k =
  match Hashtbl.find_opt st.counters name with
  | Some r -> r := !r + k
  | None -> Hashtbl.replace st.counters name (ref k)

let gauge_max st name v =
  match Hashtbl.find_opt st.gauges name with
  | Some r -> if v > !r then r := v
  | None -> Hashtbl.replace st.gauges name (ref v)

(* Obs's power-of-two bucketing: <= 0 -> 0, otherwise the highest power
   of two not above the sample. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 1 in
    while !b * 2 <= v && !b < max_int / 2 do
      b := !b * 2
    done;
    !b
  end

let hist_observe st name v =
  let h =
    match Hashtbl.find_opt st.hists name with
    | Some h -> h
    | None ->
        let h =
          {
            h_count = 0;
            h_sum = 0;
            h_min = max_int;
            h_max = min_int;
            h_buckets = Hashtbl.create 8;
          }
        in
        Hashtbl.replace st.hists name h;
        h
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  Hashtbl.replace h.h_buckets b
    (1 + Option.value ~default:0 (Hashtbl.find_opt h.h_buckets b))

let wall_observe st name v =
  let w =
    match Hashtbl.find_opt st.walls name with
    | Some w -> w
    | None ->
        let w =
          {
            wa_count = 0;
            wa_sum = 0.;
            wa_min = 0.;
            wa_max = 0.;
            wa_counts = Array.make (Array.length Obs.default_wall_bounds + 1) 0;
          }
        in
        Hashtbl.replace st.walls name w;
        w
  in
  if w.wa_count = 0 then begin
    w.wa_min <- v;
    w.wa_max <- v
  end
  else begin
    if v < w.wa_min then w.wa_min <- v;
    if v > w.wa_max then w.wa_max <- v
  end;
  w.wa_count <- w.wa_count + 1;
  w.wa_sum <- w.wa_sum +. v;
  let bounds = Obs.default_wall_bounds in
  let n = Array.length bounds in
  let i = ref 0 in
  while !i < n && v > bounds.(!i) do
    incr i
  done;
  w.wa_counts.(!i) <- w.wa_counts.(!i) + 1

let flight_record st fl =
  let cap = Array.length st.flights in
  st.flights.(st.fl_next mod cap) <- Some fl;
  st.fl_next <- st.fl_next + 1

let snapshot st : Obs.snapshot =
  locked st @@ fun () ->
  let sorted tbl value =
    Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  gauge_max st "serve.keys" (Hashtbl.length st.keys);
  (* live (non-high-water) readings, refreshed at snapshot time *)
  let live =
    let busy_now = Array.fold_left (fun a b -> if b then a + 1 else a) 0 st.busy in
    ("serve.busy_now", busy_now)
    :: List.concat
         (List.init (Array.length st.queue_now) (fun i ->
              [ (Printf.sprintf "serve.shard%d.queue_now" i, st.queue_now.(i)) ]))
  in
  {
    Obs.counters = sorted st.counters (fun r -> !r);
    gauges =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (live @ sorted st.gauges (fun r -> !r));
    hists =
      sorted st.hists (fun h ->
          {
            Obs.count = h.h_count;
            sum = h.h_sum;
            min = (if h.h_count = 0 then None else Some h.h_min);
            max = (if h.h_count = 0 then None else Some h.h_max);
            buckets =
              Hashtbl.fold (fun b c acc -> (b, c) :: acc) h.h_buckets []
              |> List.sort (fun (a, _) (b, _) -> compare a b);
          });
    wall_hists =
      sorted st.walls (fun w ->
          {
            Obs.w_count = w.wa_count;
            w_sum = w.wa_sum;
            w_min = (if w.wa_count = 0 then None else Some w.wa_min);
            w_max = (if w.wa_count = 0 then None else Some w.wa_max);
            w_bounds = Obs.default_wall_bounds;
            w_counts = Array.copy w.wa_counts;
          });
    spans = [];
  }

let flights_json st =
  locked st @@ fun () ->
  let cap = Array.length st.flights in
  let first = max 0 (st.fl_next - cap) in
  let entries = ref [] in
  (* newest first *)
  for k = first to st.fl_next - 1 do
    match st.flights.(k mod cap) with
    | None -> ()
    | Some fl ->
        entries :=
          Obj
            [
              ("seq", Int fl.fl_seq);
              ("key", String fl.fl_key);
              ("proto", String fl.fl_proto);
              ("shard", Int fl.fl_shard);
              ("us", Int fl.fl_us);
              ("ok", Bool fl.fl_ok);
            ]
          :: !entries
  done;
  Obj
    [
      ("schema", String "rbvc-flight/1");
      ("recorded", Int st.fl_next);
      ("slow", List !entries);
    ]

(* ---------------- server-side trace buffer ----------------

   Reader threads share the accepting domain's DLS, so the per-domain
   Obs.Tracer slot is off-limits to them; this explicit buffer under a
   mutex is the server's trace. One global logical clock stamps events
   in append order, which keeps every track's lclock monotone — the
   invariant [Trace_export.check_spans] pins.

   Track layout: shard request spans on tracks [0..shards-1], the
   ingress (reader) events on track [shards], and each shard's absorbed
   engine events on a disjoint block starting at [1000 + 256*shard]
   (engine track [t] in [-1..n-1] lands at [1000 + 256*shard + t + 1]).
   Flow ids derive from the request's trace context (client-chosen,
   spaced by 4) or from a server-local base when the client sent none:
   +0 client->ingress "rpc", +1 ingress->shard "queue", +2
   shard->client "resp", +3 shard->engine "run". *)

type tstate = {
  tmx : Mutex.t;
  mutable tev : Obs.Tracer.event list;  (* newest first *)
  mutable tclock : int;
  mutable tlabels : (int * string) list;
}

let tstate_make ~shards =
  {
    tmx = Mutex.create ();
    tev = [];
    tclock = 0;
    tlabels =
      (shards, "ingress")
      :: List.init shards (fun s -> (s, Printf.sprintf "shard%d" s));
  }

let tlock tr f =
  Mutex.lock tr.tmx;
  Fun.protect ~finally:(fun () -> Mutex.unlock tr.tmx) f

let temit tr ~track kind name args =
  tlock tr @@ fun () ->
  let lclock = tr.tclock in
  tr.tclock <- lclock + 1;
  tr.tev <- { Obs.Tracer.lclock; track; name; kind; args } :: tr.tev

let engine_track ~shard t = 1000 + (256 * shard) + t + 1

(* Absorb one engine run's collected events: remap tracks into the
   shard's engine block, lclocks onto the global clock (per-track
   monotonicity across requests), and flow ids into a per-request
   space so arrows from different runs never alias. *)
let tabsorb tr ~shard ~flow_run ~seq events =
  tlock tr @@ fun () ->
  let remap_args args =
    List.map
      (function
        | (k, Obs.Tracer.Int id) when k = "flow" ->
            (k, Obs.Tracer.Int ((1 lsl 40) + (seq lsl 20) + id))
        | kv -> kv)
      args
  in
  let sched = engine_track ~shard (-1) in
  if not (List.mem_assoc sched tr.tlabels) then
    tr.tlabels <- (sched, Printf.sprintf "shard%d/engine" shard) :: tr.tlabels;
  (* close the shard->engine arrow on the engine's scheduler track *)
  tr.tev <-
    {
      Obs.Tracer.lclock = tr.tclock;
      track = sched;
      name = "run";
      kind = Obs.Tracer.Flow_end;
      args = [ ("flow", Obs.Tracer.Int flow_run) ];
    }
    :: tr.tev;
  tr.tclock <- tr.tclock + 1;
  List.iter
    (fun (e : Obs.Tracer.event) ->
      let track = engine_track ~shard e.track in
      if not (List.mem_assoc track tr.tlabels) then
        tr.tlabels <-
          (track, Printf.sprintf "shard%d/p%d" shard e.track) :: tr.tlabels;
      tr.tev <-
        {
          e with
          Obs.Tracer.lclock = tr.tclock;
          track;
          args = remap_args e.args;
        }
        :: tr.tev;
      tr.tclock <- tr.tclock + 1)
    events

let twrite tr path =
  let events, labels =
    tlock tr (fun () -> (List.rev tr.tev, tr.tlabels))
  in
  Trace_export.write ~labels path events

(* ---------------- protocol frames ---------------- *)

type request = {
  key : string;
  proto : string;
  seed : int;
  n : int;
  f : int;
  d : int;
  rounds : int;
  topology : string;
}

type response = {
  id : int;
  r_key : string;
  ok : bool;
  shard : int;
  decisions : Persist.json option;
  error : string option;
}

let request_frame ~id (r : request) =
  Obj
    ([
       ("t", String "req");
       ("id", Int id);
       ("key", String r.key);
       ("proto", String r.proto);
       ("seed", Int r.seed);
       ("n", Int r.n);
       ("f", Int r.f);
       ("d", Int r.d);
       ("rounds", Int r.rounds);
     ]
    @
    (* complete stays implicit, keeping the frame byte-identical to the
       pre-topology wire format *)
    if r.topology = "complete" then []
    else [ ("topology", String r.topology) ])

let shutdown_frame = Obj [ ("t", String "shutdown") ]

let ok_frame ~id ~key ~shard decisions =
  Obj
    [
      ("t", String "resp");
      ("id", Int id);
      ("key", String key);
      ("ok", Bool true);
      ("shard", Int shard);
      ("decisions", decisions);
    ]

let err_frame ~id msg =
  Obj
    [ ("t", String "resp"); ("id", Int id); ("ok", Bool false); ("error", String msg) ]

(* The topology a request names, instantiated at its [n]: [Ok None] for
   the (default) complete graph. Both failure shapes — an unparsable
   spec and a spec infeasible at this size — come back as [Error msg],
   so the daemon answers with a structured error response, never a
   backtrace. *)
let topology_of (r : request) =
  match Topology.spec_of_string r.topology with
  | Error msg -> Error (Printf.sprintf "bad topology: %s" msg)
  | Ok Topology.Complete -> Ok None
  | Ok spec -> (
      match Topology.instantiate spec ~n:r.n with
      | Ok t -> Ok (Some t)
      | Error msg ->
          Error (Printf.sprintf "infeasible topology at n = %d: %s" r.n msg))

let parse_request json =
  let* id = Result.map_error (fun e -> (-1, e)) (Wire.int_field "id" json) in
  let with_id r = Result.map_error (fun e -> (id, e)) r in
  let opt_int name ~default =
    match Persist.member name json with
    | None -> Ok default
    | Some j -> with_id (Wire.int_of_json j)
  in
  let* key = with_id (Wire.string_field "key" json) in
  let* proto = with_id (Wire.string_field "proto" json) in
  let* n = with_id (Wire.int_field "n" json) in
  let* seed = opt_int "seed" ~default:0 in
  let* f = opt_int "f" ~default:0 in
  let* d = opt_int "d" ~default:1 in
  let* rounds = opt_int "rounds" ~default:8 in
  let* topology =
    match Persist.member "topology" json with
    | None -> Ok "complete"
    | Some (String s) -> Ok s
    | Some _ -> Error (id, "field \"topology\" must be a string")
  in
  let reject msg = Error (id, msg) in
  if String.length key = 0 || String.length key > max_key_len then
    reject (Printf.sprintf "key must be 1..%d bytes" max_key_len)
  else if n < 1 || n > max_n then reject (Printf.sprintf "n must be 1..%d" max_n)
  else if f < 0 || f > max_f then reject (Printf.sprintf "f must be 0..%d" max_f)
  else if d < 1 || d > max_d then reject (Printf.sprintf "d must be 1..%d" max_d)
  else if rounds < 0 || rounds > max_rounds then
    reject (Printf.sprintf "rounds must be 0..%d" max_rounds)
  else
    let req = { key; proto; seed; n; f; d; rounds; topology } in
    (* reject malformed / infeasible topologies at ingress, before the
       job ever reaches a shard *)
    match topology_of req with
    | Error msg -> reject msg
    | Ok _ -> Ok (id, req)

let parse_response json =
  let* t = Wire.string_field "t" json in
  if t <> "resp" then Error (Printf.sprintf "expected resp, got %S" t) else
  let* id = Wire.int_field "id" json in
  let* ok =
    match Persist.member "ok" json with
    | Some (Bool b) -> Ok b
    | _ -> Error "missing bool field \"ok\""
  in
  let str name = match Persist.member name json with
    | Some (String s) -> Some s
    | _ -> None
  in
  let num name = match Persist.member name json with
    | Some (Int i) -> i
    | _ -> -1
  in
  Ok
    {
      id;
      r_key = Option.value ~default:"" (str "key");
      ok;
      shard = num "shard";
      decisions = Persist.member "decisions" json;
      error = str "error";
    }

(* FNV-1a (32-bit variant): deterministic per-key shard placement
   (Hashtbl.hash is not pinned across OCaml versions). *)
let shard_of_key ~shards key =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    key;
  !h mod shards

(* ---------------- the daemon ---------------- *)

type client = { c_id : int; link : Transport.link }

type job =
  | Job of {
      client : client;
      id : int;
      req : request;
      ctx : Wire.ctx option;
      seq : int;
      flow_base : int;  (* trace flow id base for this request *)
      t_enq : float;  (* enqueue wall time *)
    }
  | Quit

let ignore_sigpipe () =
  match Sys.os_type with
  | "Unix" -> ( try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())
  | _ -> ()

let known_proto p = List.mem p Codecs.names

let worker ~stats ~config ~trace ~shard jobs =
  let rec loop () =
    match Chan.pop jobs with
    | Quit -> ()
    | Job { client; id; req; ctx; seq; flow_base; t_enq } ->
        let t0 = Unix.gettimeofday () in
        locked stats (fun () ->
            stats.queue_now.(shard) <- stats.queue_now.(shard) - 1;
            stats.inflight <- stats.inflight + 1;
            stats.busy.(shard) <- true;
            gauge_max stats "serve.inflight" stats.inflight;
            gauge_max stats "serve.busy_shards"
              (Array.fold_left (fun a b -> if b then a + 1 else a) 0 stats.busy);
            wall_observe stats "serve.queue_wait" (t0 -. t_enq);
            Hashtbl.replace stats.keys req.key ());
        (match trace with
        | None -> ()
        | Some tr ->
            temit tr ~track:shard Obs.Tracer.Flow_end "queue"
              [ ("flow", Obs.Tracer.Int (flow_base + 1)) ];
            temit tr ~track:shard Obs.Tracer.Begin "request"
              [
                ("seq", Obs.Tracer.Int seq);
                ("key", Obs.Tracer.Str req.key);
                ("proto", Obs.Tracer.Str req.proto);
              ]);
        let run_engine packed =
          match trace with
          | None -> (
              match Codecs.engine_decisions packed with
              | decisions -> Ok decisions
              | exception e -> Error (Printexc.to_string e))
          | Some tr ->
              temit tr ~track:shard Obs.Tracer.Flow_start "run"
                [ ("flow", Obs.Tracer.Int (flow_base + 3)) ];
              let result, events =
                Obs.Tracer.collect (fun () ->
                    match Codecs.engine_decisions packed with
                    | decisions -> Ok decisions
                    | exception e -> Error (Printexc.to_string e))
              in
              tabsorb tr ~shard ~flow_run:(flow_base + 3) ~seq events;
              result
        in
        let result =
          match topology_of req with
          | Error msg -> Error msg
          | Ok topology -> (
              match
                Codecs.make_checked ?topology ~proto:req.proto ~seed:req.seed
                  ~n:req.n ~f:req.f ~d:req.d ~rounds:req.rounds ()
              with
              | Error msg -> Error msg
              | Ok (Codecs.P { rounds; _ } as packed) ->
                  Result.map (fun d -> (d, rounds)) (run_engine packed))
        in
        let frame, rounds_run =
          match result with
          | Ok (decisions, rounds) ->
              (ok_frame ~id ~key:req.key ~shard decisions, rounds)
          | Error msg -> (err_frame ~id msg, 0)
        in
        let t1 = Unix.gettimeofday () in
        let us = int_of_float ((t1 -. t_enq) *. 1e6) in
        (* account BEFORE sending the response: a client that reads the
           stats endpoint right after its last response must already see
           that request counted *)
        locked stats (fun () ->
            stats.inflight <- stats.inflight - 1;
            stats.busy.(shard) <- false;
            counter_add stats "serve.requests" 1;
            counter_add stats
              (Printf.sprintf "serve.shard%d.requests" shard)
              1;
            if Result.is_error result then counter_add stats "serve.errors" 1;
            counter_add stats "serve.rounds_run" rounds_run;
            hist_observe stats "serve.latency_us" us;
            let lat = t1 -. t_enq in
            wall_observe stats "serve.latency" lat;
            wall_observe stats
              (Printf.sprintf "serve.latency.%s"
                 (if known_proto req.proto then req.proto else "other"))
              lat;
            if us >= config.slow_us then
              flight_record stats
                {
                  fl_seq = seq;
                  fl_key = req.key;
                  fl_proto = req.proto;
                  fl_shard = shard;
                  fl_us = us;
                  fl_ok = Result.is_ok result;
                });
        (match trace with
        | None -> ()
        | Some tr ->
            temit tr ~track:shard Obs.Tracer.End "request" [];
            temit tr ~track:shard Obs.Tracer.Flow_start "resp"
              [ ("flow", Obs.Tracer.Int (flow_base + 2)) ]);
        (match client.link.Transport.send ?ctx frame with
        | () -> ()
        | exception _ ->
            locked stats (fun () -> counter_add stats "serve.send_failures" 1));
        loop ()
  in
  loop ()

(* ---------------- stats HTTP endpoint ----------------

   Minimal but well-formed HTTP/1.0: the request head is read to its
   blank line (bounded), only GET and HEAD are accepted, every response
   carries Content-Type / Content-Length / Connection: close, and
   unknown paths get a real 404. Routes:
     /          the rbvc-metrics/1 JSON document (with wall histograms)
     /metrics   Prometheus text exposition
     /healthz   200 "ready" | 503 "draining" during graceful shutdown
     /slow      the flight-recorder ring, newest first
*)

let http_read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 8192 then Buffer.contents buf
    else
      let seen = Buffer.contents buf in
      let found =
        let len = String.length seen in
        len >= 4 && String.sub seen (len - 4) 4 = "\r\n\r\n"
      in
      if found then seen
      else
        match Unix.read fd chunk 0 512 with
        | 0 -> Buffer.contents buf
        | k ->
            Buffer.add_subbytes buf chunk 0 k;
            go ()
        | exception _ -> Buffer.contents buf
  in
  go ()

let http_write fd s =
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < Bytes.length b do
    let k = Unix.write fd b !off (Bytes.length b - !off) in
    if k = 0 then raise Exit;
    off := !off + k
  done

let http_respond fd ~head_only ~status ~ctype body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
       close\r\n\r\n"
      status ctype (String.length body)
  in
  http_write fd (if head_only then head else head ^ body)

let stats_endpoint ~stats ~stopping listener =
  let rec loop () =
    match Transport.Tcp.accept listener with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception _ -> ()
    | fd ->
        (try
           let head = http_read_head fd in
           let request_line =
             match String.index_opt head '\r' with
             | Some i -> String.sub head 0 i
             | None -> head
           in
           let meth, path =
             match String.split_on_char ' ' request_line with
             | m :: p :: _ ->
                 let p =
                   match String.index_opt p '?' with
                   | Some q -> String.sub p 0 q
                   | None -> p
                 in
                 (m, p)
             | _ -> ("", "")
           in
           locked stats (fun () -> counter_add stats "serve.http.requests" 1);
           let head_only = meth = "HEAD" in
           if meth <> "GET" && meth <> "HEAD" then
             http_respond fd ~head_only:false ~status:"405 Method Not Allowed"
               ~ctype:"text/plain" "method not allowed\n"
           else begin
             match path with
             | "/" | "/stats.json" ->
                 let body =
                   Persist.to_string
                     (Metrics.to_json ~timings:true (snapshot stats))
                 in
                 http_respond fd ~head_only ~status:"200 OK"
                   ~ctype:"application/json" body
             | "/metrics" ->
                 http_respond fd ~head_only ~status:"200 OK"
                   ~ctype:"text/plain; version=0.0.4"
                   (Metrics.to_prometheus (snapshot stats))
             | "/healthz" ->
                 if Atomic.get stopping then
                   http_respond fd ~head_only ~status:"503 Service Unavailable"
                     ~ctype:"text/plain" "draining\n"
                 else
                   http_respond fd ~head_only ~status:"200 OK"
                     ~ctype:"text/plain" "ready\n"
             | "/slow" ->
                 http_respond fd ~head_only ~status:"200 OK"
                   ~ctype:"application/json"
                   (Persist.to_string (flights_json stats))
             | _ ->
                 locked stats (fun () ->
                     counter_add stats "serve.http.not_found" 1);
                 http_respond fd ~head_only ~status:"404 Not Found"
                   ~ctype:"text/plain" "not found\n"
           end
         with _ -> ());
        (try Unix.close fd with _ -> ());
        loop ()
  in
  loop ()

let run ?(signals = true) ?on_ready config =
  ignore_sigpipe ();
  let shards =
    if config.shards > 0 then config.shards else default_shards ()
  in
  let stats = stats_make ~shards ~flight_cap:config.flight_cap in
  let trace = Option.map (fun _ -> tstate_make ~shards) config.trace_path in
  locked stats (fun () -> gauge_max stats "serve.shards" shards);
  let listener = Transport.Tcp.listen (config.host, config.port) in
  let stats_listener =
    Option.map
      (fun p -> Transport.Tcp.listen (config.host, p))
      config.stats_port
  in
  let stopping = Atomic.make false in
  let initiate_stop () =
    if Atomic.compare_and_set stopping false true then
      (* only the request listener: the stats endpoint stays up through
         the drain so /healthz reports "draining" while it happens *)
      Transport.Tcp.close_listener listener
  in
  if signals then begin
    let h = Sys.Signal_handle (fun _ -> initiate_stop ()) in
    (try Sys.set_signal Sys.sigint h with _ -> ());
    try Sys.set_signal Sys.sigterm h with _ -> ()
  end;
  let jobs = Array.init shards (fun _ -> Chan.make config.queue_cap) in
  let workers =
    Array.init shards (fun shard ->
        Domain.spawn (fun () ->
            worker ~stats ~config ~trace ~shard jobs.(shard)))
  in
  let stats_thread =
    Option.map
      (fun l -> Thread.create (fun () -> stats_endpoint ~stats ~stopping l) ())
      stats_listener
  in
  (match on_ready with
  | None -> ()
  | Some f ->
      let _, port = Transport.Tcp.address listener in
      let stats_port =
        Option.map (fun l -> snd (Transport.Tcp.address l)) stats_listener
      in
      f ~port ~stats_port);
  let conns_m = Mutex.create () in
  let conns = Hashtbl.create 64 in
  let readers = ref [] in
  let client_counter = ref 0 in
  let ingress = shards in
  let reader client =
    let bye reason =
      client.link.Transport.close ();
      Mutex.lock conns_m;
      Hashtbl.remove conns client.c_id;
      Mutex.unlock conns_m;
      ignore reason
    in
    let rec loop () =
      match client.link.Transport.recv () with
      | Error `Eof -> bye "eof"
      | Error (`Corrupt msg) ->
          (try client.link.Transport.send (err_frame ~id:(-1) msg) with _ -> ());
          locked stats (fun () -> counter_add stats "serve.corrupt_frames" 1);
          bye "corrupt"
      | Ok (json, ctx) -> (
          match Wire.string_field "t" json with
          | Ok "shutdown" ->
              (try
                 client.link.Transport.send
                   (ok_frame ~id:(-1) ~key:"" ~shard:(-1) Null)
               with _ -> ());
              initiate_stop ();
              bye "shutdown"
          | Ok "req" when Atomic.get stopping ->
              (try
                 client.link.Transport.send
                   (err_frame ~id:(-1) "daemon is shutting down")
               with _ -> ());
              locked stats (fun () ->
                  counter_add stats "serve.rejected_draining" 1);
              loop ()
          | Ok "req" -> (
              match parse_request json with
              | Error (id, msg) ->
                  (try client.link.Transport.send (err_frame ~id msg)
                   with _ -> ());
                  locked stats (fun () ->
                      counter_add stats "serve.rejected" 1);
                  loop ()
              | Ok (id, req) ->
                  let shard = shard_of_key ~shards req.key in
                  let seq, depth =
                    locked stats (fun () ->
                        let seq = stats.seq in
                        stats.seq <- seq + 1;
                        stats.queue_now.(shard) <- stats.queue_now.(shard) + 1;
                        let d = stats.queue_now.(shard) in
                        gauge_max stats
                          (Printf.sprintf "serve.shard%d.queue_depth" shard)
                          d;
                        (seq, d))
                  in
                  ignore depth;
                  let flow_base =
                    match ctx with
                    | Some c -> c.Wire.trace_id
                    | None -> (1 lsl 30) + (seq * 4)
                  in
                  (match trace with
                  | None -> ()
                  | Some tr ->
                      (match ctx with
                      | Some c ->
                          (* close the client's rpc arrow on ingress *)
                          temit tr ~track:ingress Obs.Tracer.Flow_end "rpc"
                            [ ("flow", Obs.Tracer.Int c.Wire.trace_id) ]
                      | None -> ());
                      temit tr ~track:ingress Obs.Tracer.Instant "req.enqueue"
                        [
                          ("seq", Obs.Tracer.Int seq);
                          ("key", Obs.Tracer.Str req.key);
                          ("shard", Obs.Tracer.Int shard);
                        ];
                      temit tr ~track:ingress Obs.Tracer.Flow_start "queue"
                        [ ("flow", Obs.Tracer.Int (flow_base + 1)) ]);
                  (match
                     Chan.push jobs.(shard)
                       (Job
                          {
                            client;
                            id;
                            req;
                            ctx;
                            seq;
                            flow_base;
                            t_enq = Unix.gettimeofday ();
                          })
                   with
                  | () -> ()
                  | exception _ ->
                      locked stats (fun () ->
                          stats.queue_now.(shard) <-
                            stats.queue_now.(shard) - 1;
                          counter_add stats "serve.dropped_jobs" 1));
                  loop ())
          | Ok other ->
              (try
                 client.link.Transport.send
                   (err_frame ~id:(-1)
                      (Printf.sprintf "unknown frame type %S" other))
               with _ -> ());
              loop ()
          | Error msg ->
              (try client.link.Transport.send (err_frame ~id:(-1) msg)
               with _ -> ());
              loop ())
    in
    loop ()
  in
  (* accept loop: ends when initiate_stop closes the listener *)
  let rec accept_loop () =
    match Transport.Tcp.accept listener with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        if Atomic.get stopping then () else accept_loop ()
    | exception _ -> ()
    | fd ->
        let link = Transport.Tcp.link ~max_frame:config.max_frame fd in
        incr client_counter;
        let client = { c_id = !client_counter; link } in
        Mutex.lock conns_m;
        Hashtbl.replace conns client.c_id client;
        Mutex.unlock conns_m;
        locked stats (fun () -> counter_add stats "serve.connections" 1);
        readers := Thread.create reader client :: !readers;
        accept_loop ()
  in
  accept_loop ();
  (* graceful shutdown: drain queued jobs (their responses still go
     out), then unhook the clients; the stats endpoint answers
     "draining" on /healthz until the very end *)
  Array.iter (fun q -> try Chan.push q Quit with _ -> ()) jobs;
  Array.iter Domain.join workers;
  (* poison the queues so a reader mid-push can't block forever now
     that no worker will ever drain them *)
  Array.iter (fun q -> Chan.fail q "daemon stopped") jobs;
  Mutex.lock conns_m;
  let live = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
  Mutex.unlock conns_m;
  List.iter (fun c -> c.link.Transport.close ()) live;
  List.iter Thread.join !readers;
  Option.iter Transport.Tcp.close_listener stats_listener;
  Option.iter Thread.join stats_thread;
  match (trace, config.trace_path) with
  | Some tr, Some path -> twrite tr path
  | _ -> ()

(* ---------------- client side ---------------- *)

let with_conn ?(host = "127.0.0.1") ~port f =
  match Transport.Tcp.connect (host, port) with
  | exception e -> Error (Printexc.to_string e)
  | fd ->
      let link = Transport.Tcp.link fd in
      Fun.protect ~finally:(fun () -> link.Transport.close ()) (fun () -> f link)

(* Client-chosen flow-id base: spaced by 4 to leave room for the
   server's +1 queue / +2 resp / +3 run arrows. *)
let trace_id_base = 1024

let submit ?host ~port requests =
  ignore_sigpipe ();
  with_conn ?host ~port @@ fun link ->
  (* pipeline: all requests out, then collect; the daemon interleaves
     shards, so responses return out of order and are matched by id *)
  let traced = Obs.Tracer.active () in
  let nreq = List.length requests in
  match
    List.iteri
      (fun id r ->
        let ctx =
          if traced then
            Some { Wire.trace_id = trace_id_base + (4 * id); parent_span = id }
          else None
        in
        (match ctx with
        | Some c when traced ->
            Obs.Tracer.instant ~lclock:id "submit"
              [
                ("id", Obs.Tracer.Int id);
                ("key", Obs.Tracer.Str r.key);
                ("trace", Obs.Tracer.Int c.Wire.trace_id);
              ];
            Obs.Tracer.flow_start ~lclock:id ~id:c.Wire.trace_id "rpc"
        | _ -> ());
        link.Transport.send ?ctx (request_frame ~id r))
      requests
  with
  | exception e -> Error (Printexc.to_string e)
  | () ->
      let rec collect acc = function
        | 0 -> Ok acc
        | k -> (
            match link.Transport.recv () with
            | Error e -> Error (Format.asprintf "%a" Wire.pp_read_error e)
            | Ok (json, rctx) -> (
                match parse_response json with
                | Error msg -> Error msg
                | Ok resp ->
                    (match rctx with
                    | Some c when traced ->
                        (* responses arrive out of order; stamp arrival
                           order so the client track's clock stays
                           monotone *)
                        Obs.Tracer.flow_end
                          ~lclock:(nreq + (List.length acc))
                          ~id:(c.Wire.trace_id + 2) "resp"
                    | _ -> ());
                    collect (resp :: acc) (k - 1)))
      in
      let* resps = collect [] nreq in
      Ok (List.sort (fun a b -> compare a.id b.id) resps)

let shutdown ?host ~port () =
  ignore_sigpipe ();
  with_conn ?host ~port @@ fun link ->
  match link.Transport.send shutdown_frame with
  | exception e -> Error (Printexc.to_string e)
  | () -> (
      match link.Transport.recv () with
      | Error e -> Error (Format.asprintf "%a" Wire.pp_read_error e)
      | Ok _ -> Ok ())

(* ---------------- stats client ---------------- *)

(* A deliberately skeptical HTTP/1.0 GET: every way the response can be
   malformed — no status line, unparsable code, missing blank line,
   body shorter than Content-Length — comes back as [Error] with
   context, never an exception. *)
let fetch ?(host = "127.0.0.1") ~port path =
  match Transport.Tcp.connect (host, port) with
  | exception e -> Error (Printexc.to_string e)
  | fd -> (
      Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
      @@ fun () ->
      match
        let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
        let b = Bytes.of_string req in
        ignore (Unix.write fd b 0 (Bytes.length b));
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec drain () =
          let k = Unix.read fd chunk 0 4096 in
          if k > 0 then begin
            Buffer.add_subbytes buf chunk 0 k;
            drain ()
          end
        in
        (try drain () with _ -> ());
        Buffer.contents buf
      with
      | exception e ->
          Error (Printf.sprintf "GET %s: %s" path (Printexc.to_string e))
      | all ->
      let preview s =
        let s = if String.length s > 80 then String.sub s 0 80 ^ "..." else s in
        String.map (fun c -> if c = '\r' || c = '\n' then ' ' else c) s
      in
      if all = "" then Error (Printf.sprintf "GET %s: empty HTTP response" path)
      else
        let header_end =
          let rec find i =
            if i + 4 > String.length all then None
            else if String.sub all i 4 = "\r\n\r\n" then Some i
            else find (i + 1)
          in
          find 0
        in
        match header_end with
        | None ->
            Error
              (Printf.sprintf
                 "GET %s: malformed HTTP response (no header terminator): %S"
                 path (preview all))
        | Some he -> (
            let head = String.sub all 0 he in
            let body =
              String.sub all (he + 4) (String.length all - he - 4)
            in
            let status_line =
              match String.index_opt head '\r' with
              | Some i -> String.sub head 0 i
              | None -> head
            in
            match String.split_on_char ' ' status_line with
            | http :: code :: _
              when String.length http >= 5 && String.sub http 0 5 = "HTTP/" -> (
                match int_of_string_opt code with
                | None ->
                    Error
                      (Printf.sprintf
                         "GET %s: malformed HTTP status line: %S" path
                         (preview status_line))
                | Some 200 -> (
                    (* honor Content-Length when present: a truncated
                       body must surface as an error, not parse noise *)
                    let content_length =
                      List.find_map
                        (fun line ->
                          match String.index_opt line ':' with
                          | Some i
                            when String.lowercase_ascii (String.sub line 0 i)
                                 = "content-length" ->
                              int_of_string_opt
                                (String.trim
                                   (String.sub line (i + 1)
                                      (String.length line - i - 1)))
                          | _ -> None)
                        (String.split_on_char '\n'
                           (String.map
                              (fun c -> if c = '\r' then '\n' else c)
                              head))
                    in
                    match content_length with
                    | Some want when String.length body < want ->
                        Error
                          (Printf.sprintf
                             "GET %s: truncated HTTP response (%d of %d body \
                              bytes)"
                             path (String.length body) want)
                    | _ -> Ok body)
                | Some code ->
                    Error
                      (Printf.sprintf "GET %s: HTTP %d: %s" path code
                         (preview body)))
            | _ ->
                Error
                  (Printf.sprintf "GET %s: malformed HTTP status line: %S" path
                     (preview status_line))))

let fetch_stats ?host ~port () =
  let* body = fetch ?host ~port "/" in
  match Persist.of_string body with
  | Ok json -> Ok json
  | Error e ->
      Error (Printf.sprintf "GET /: unparsable metrics body (%s)" e)
