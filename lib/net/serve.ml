(* The rbvc consensus service: a daemon hosting many concurrent
   consensus instances over the {!Wire} frame protocol, sharded by
   instance key across worker domains, with live metrics on an optional
   HTTP stats endpoint and graceful shutdown.

   Threading model: the main thread accepts; each client connection
   gets a reader thread that parses and validates requests and pushes
   jobs onto per-shard bounded queues; one worker *domain* per shard
   pops, runs the engine, and writes the response back on the client's
   link (frame-atomic sends). Per-key sharding means requests for the
   same key serialize on one shard — per-instance ordering — while
   distinct keys run genuinely in parallel. The shard count follows the
   lib/par convention (RBVC_JOBS / recommended_domain_count) but the
   workers are dedicated domains, not the Par pool: Par is built for
   batch fan-out that joins, a server needs resident loops.

   Stats: worker domains record into one mutex-protected registry (the
   Obs per-domain sinks assume snapshotting only between batches, which
   a live endpoint cannot guarantee); the endpoint synthesizes an
   {!Obs.snapshot} from it and serves [Metrics.to_json], so the payload
   validates against the rbvc-metrics/1 schema like any simulator
   metrics file. *)

open Persist

let ( let* ) = Result.bind

type config = {
  host : string;
  port : int;  (** 0 = ephemeral, reported via [on_ready] *)
  stats_port : int option;  (** 0 = ephemeral *)
  shards : int;
  queue_cap : int;
  max_frame : int;
}

let default_shards () = max 1 (min 8 (Par.default_jobs ()))

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    stats_port = None;
    shards = 0 (* 0 = default_shards () at run time *);
    queue_cap = 256;
    max_frame = Wire.default_max_frame;
  }

(* Request caps: the service is a host for the paper's small-n regimes,
   not a general job runner; reject anything that could wedge a shard. *)
let max_n = 128
let max_f = 8
let max_d = 64
let max_rounds = 4096
let max_key_len = 256

(* ---------------- stats registry ---------------- *)

type hist_acc = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : (int, int) Hashtbl.t;
}

type stats = {
  sm : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  hists : (string, hist_acc) Hashtbl.t;
  keys : (string, unit) Hashtbl.t;
  mutable inflight : int;
}

let stats_make () =
  {
    sm = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
    keys = Hashtbl.create 64;
    inflight = 0;
  }

let locked st f =
  Mutex.lock st.sm;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.sm) f

let counter_add st name k =
  match Hashtbl.find_opt st.counters name with
  | Some r -> r := !r + k
  | None -> Hashtbl.replace st.counters name (ref k)

let gauge_max st name v =
  match Hashtbl.find_opt st.gauges name with
  | Some r -> if v > !r then r := v
  | None -> Hashtbl.replace st.gauges name (ref v)

(* Obs's power-of-two bucketing: <= 0 -> 0, otherwise the highest power
   of two not above the sample. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 1 in
    while !b * 2 <= v && !b < max_int / 2 do
      b := !b * 2
    done;
    !b
  end

let hist_observe st name v =
  let h =
    match Hashtbl.find_opt st.hists name with
    | Some h -> h
    | None ->
        let h =
          {
            h_count = 0;
            h_sum = 0;
            h_min = max_int;
            h_max = min_int;
            h_buckets = Hashtbl.create 8;
          }
        in
        Hashtbl.replace st.hists name h;
        h
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  Hashtbl.replace h.h_buckets b
    (1 + Option.value ~default:0 (Hashtbl.find_opt h.h_buckets b))

let snapshot st : Obs.snapshot =
  locked st @@ fun () ->
  let sorted tbl value =
    Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  gauge_max st "serve.keys" (Hashtbl.length st.keys);
  {
    Obs.counters = sorted st.counters (fun r -> !r);
    gauges = sorted st.gauges (fun r -> !r);
    hists =
      sorted st.hists (fun h ->
          {
            Obs.count = h.h_count;
            sum = h.h_sum;
            min = (if h.h_count = 0 then None else Some h.h_min);
            max = (if h.h_count = 0 then None else Some h.h_max);
            buckets =
              Hashtbl.fold (fun b c acc -> (b, c) :: acc) h.h_buckets []
              |> List.sort (fun (a, _) (b, _) -> compare a b);
          });
    spans = [];
  }

(* ---------------- protocol frames ---------------- *)

type request = {
  key : string;
  proto : string;
  seed : int;
  n : int;
  f : int;
  d : int;
  rounds : int;
}

type response = {
  id : int;
  r_key : string;
  ok : bool;
  shard : int;
  decisions : Persist.json option;
  error : string option;
}

let request_frame ~id (r : request) =
  Obj
    [
      ("t", String "req");
      ("id", Int id);
      ("key", String r.key);
      ("proto", String r.proto);
      ("seed", Int r.seed);
      ("n", Int r.n);
      ("f", Int r.f);
      ("d", Int r.d);
      ("rounds", Int r.rounds);
    ]

let shutdown_frame = Obj [ ("t", String "shutdown") ]

let ok_frame ~id ~key ~shard decisions =
  Obj
    [
      ("t", String "resp");
      ("id", Int id);
      ("key", String key);
      ("ok", Bool true);
      ("shard", Int shard);
      ("decisions", decisions);
    ]

let err_frame ~id msg =
  Obj
    [ ("t", String "resp"); ("id", Int id); ("ok", Bool false); ("error", String msg) ]

let parse_request json =
  let* id = Result.map_error (fun e -> (-1, e)) (Wire.int_field "id" json) in
  let with_id r = Result.map_error (fun e -> (id, e)) r in
  let opt_int name ~default =
    match Persist.member name json with
    | None -> Ok default
    | Some j -> with_id (Wire.int_of_json j)
  in
  let* key = with_id (Wire.string_field "key" json) in
  let* proto = with_id (Wire.string_field "proto" json) in
  let* n = with_id (Wire.int_field "n" json) in
  let* seed = opt_int "seed" ~default:0 in
  let* f = opt_int "f" ~default:0 in
  let* d = opt_int "d" ~default:1 in
  let* rounds = opt_int "rounds" ~default:8 in
  let reject msg = Error (id, msg) in
  if String.length key = 0 || String.length key > max_key_len then
    reject (Printf.sprintf "key must be 1..%d bytes" max_key_len)
  else if n < 1 || n > max_n then reject (Printf.sprintf "n must be 1..%d" max_n)
  else if f < 0 || f > max_f then reject (Printf.sprintf "f must be 0..%d" max_f)
  else if d < 1 || d > max_d then reject (Printf.sprintf "d must be 1..%d" max_d)
  else if rounds < 0 || rounds > max_rounds then
    reject (Printf.sprintf "rounds must be 0..%d" max_rounds)
  else Ok (id, { key; proto; seed; n; f; d; rounds })

let parse_response json =
  let* t = Wire.string_field "t" json in
  if t <> "resp" then Error (Printf.sprintf "expected resp, got %S" t) else
  let* id = Wire.int_field "id" json in
  let* ok =
    match Persist.member "ok" json with
    | Some (Bool b) -> Ok b
    | _ -> Error "missing bool field \"ok\""
  in
  let str name = match Persist.member name json with
    | Some (String s) -> Some s
    | _ -> None
  in
  let num name = match Persist.member name json with
    | Some (Int i) -> i
    | _ -> -1
  in
  Ok
    {
      id;
      r_key = Option.value ~default:"" (str "key");
      ok;
      shard = num "shard";
      decisions = Persist.member "decisions" json;
      error = str "error";
    }

(* FNV-1a (32-bit variant): deterministic per-key shard placement
   (Hashtbl.hash is not pinned across OCaml versions). *)
let shard_of_key ~shards key =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    key;
  !h mod shards

(* ---------------- the daemon ---------------- *)

type client = { c_id : int; link : Transport.link }

type job =
  | Job of { client : client; id : int; req : request }
  | Quit

let ignore_sigpipe () =
  match Sys.os_type with
  | "Unix" -> ( try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())
  | _ -> ()

let worker ~stats ~shard jobs =
  let rec loop () =
    match Chan.pop jobs with
    | Quit -> ()
    | Job { client; id; req } ->
        let t0 = Unix.gettimeofday () in
        locked stats (fun () ->
            stats.inflight <- stats.inflight + 1;
            gauge_max stats "serve.inflight" stats.inflight;
            Hashtbl.replace stats.keys req.key ());
        let result =
          match
            Codecs.make_checked ~proto:req.proto ~seed:req.seed ~n:req.n
              ~f:req.f ~d:req.d ~rounds:req.rounds
          with
          | Error msg -> Error msg
          | Ok (Codecs.P { rounds; _ } as packed) -> (
              match Codecs.engine_decisions packed with
              | decisions -> Ok (decisions, rounds)
              | exception e -> Error (Printexc.to_string e))
        in
        let frame, rounds_run =
          match result with
          | Ok (decisions, rounds) ->
              (ok_frame ~id ~key:req.key ~shard decisions, rounds)
          | Error msg -> (err_frame ~id msg, 0)
        in
        let us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
        (* account BEFORE sending the response: a client that reads the
           stats endpoint right after its last response must already see
           that request counted *)
        locked stats (fun () ->
            stats.inflight <- stats.inflight - 1;
            counter_add stats "serve.requests" 1;
            counter_add stats
              (Printf.sprintf "serve.shard%d.requests" shard)
              1;
            if Result.is_error result then counter_add stats "serve.errors" 1;
            counter_add stats "serve.rounds_run" rounds_run;
            hist_observe stats "serve.latency_us" us);
        (match client.link.Transport.send frame with
        | () -> ()
        | exception _ ->
            locked stats (fun () -> counter_add stats "serve.send_failures" 1));
        loop ()
  in
  loop ()

(* Minimal HTTP/1.0 server for the stats endpoint: every request gets
   the current metrics JSON — enough for curl and rbvc validate. *)
let stats_endpoint ~stats ~stopping listener =
  let rec loop () =
    match Transport.Tcp.accept listener with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        if Atomic.get stopping then () else loop ()
    | exception _ -> ()
    | fd ->
        (try
           (* drain whatever request line arrived; content is ignored *)
           let buf = Bytes.create 1024 in
           (try ignore (Unix.read fd buf 0 1024) with _ -> ());
           let body = Persist.to_string (Metrics.to_json (snapshot stats)) in
           let head =
             Printf.sprintf
               "HTTP/1.0 200 OK\r\n\
                Content-Type: application/json\r\n\
                Content-Length: %d\r\n\
                Connection: close\r\n\r\n"
               (String.length body)
           in
           let out = head ^ body in
           let b = Bytes.unsafe_of_string out in
           let off = ref 0 in
           while !off < Bytes.length b do
             let k = Unix.write fd b !off (Bytes.length b - !off) in
             if k = 0 then raise Exit;
             off := !off + k
           done
         with _ -> ());
        (try Unix.close fd with _ -> ());
        loop ()
  in
  loop ()

let run ?(signals = true) ?on_ready config =
  ignore_sigpipe ();
  let shards =
    if config.shards > 0 then config.shards else default_shards ()
  in
  let stats = stats_make () in
  locked stats (fun () -> gauge_max stats "serve.shards" shards);
  let listener = Transport.Tcp.listen (config.host, config.port) in
  let stats_listener =
    Option.map
      (fun p -> Transport.Tcp.listen (config.host, p))
      config.stats_port
  in
  let stopping = Atomic.make false in
  let initiate_stop () =
    if Atomic.compare_and_set stopping false true then begin
      Transport.Tcp.close_listener listener;
      Option.iter Transport.Tcp.close_listener stats_listener
    end
  in
  if signals then begin
    let h = Sys.Signal_handle (fun _ -> initiate_stop ()) in
    (try Sys.set_signal Sys.sigint h with _ -> ());
    try Sys.set_signal Sys.sigterm h with _ -> ()
  end;
  let jobs = Array.init shards (fun _ -> Chan.make config.queue_cap) in
  let workers =
    Array.init shards (fun shard ->
        Domain.spawn (fun () -> worker ~stats ~shard jobs.(shard)))
  in
  let stats_thread =
    Option.map
      (fun l -> Thread.create (fun () -> stats_endpoint ~stats ~stopping l) ())
      stats_listener
  in
  (match on_ready with
  | None -> ()
  | Some f ->
      let _, port = Transport.Tcp.address listener in
      let stats_port =
        Option.map (fun l -> snd (Transport.Tcp.address l)) stats_listener
      in
      f ~port ~stats_port);
  let conns_m = Mutex.create () in
  let conns = Hashtbl.create 64 in
  let readers = ref [] in
  let client_counter = ref 0 in
  let reader client =
    let bye reason =
      client.link.Transport.close ();
      Mutex.lock conns_m;
      Hashtbl.remove conns client.c_id;
      Mutex.unlock conns_m;
      ignore reason
    in
    let rec loop () =
      match client.link.Transport.recv () with
      | Error `Eof -> bye "eof"
      | Error (`Corrupt msg) ->
          (try client.link.Transport.send (err_frame ~id:(-1) msg) with _ -> ());
          locked stats (fun () -> counter_add stats "serve.corrupt_frames" 1);
          bye "corrupt"
      | Ok json -> (
          match Wire.string_field "t" json with
          | Ok "shutdown" ->
              (try
                 client.link.Transport.send
                   (ok_frame ~id:(-1) ~key:"" ~shard:(-1) Null)
               with _ -> ());
              initiate_stop ();
              bye "shutdown"
          | Ok "req" when Atomic.get stopping ->
              (try
                 client.link.Transport.send
                   (err_frame ~id:(-1) "daemon is shutting down")
               with _ -> ());
              loop ()
          | Ok "req" -> (
              match parse_request json with
              | Error (id, msg) ->
                  (try client.link.Transport.send (err_frame ~id msg)
                   with _ -> ());
                  locked stats (fun () ->
                      counter_add stats "serve.rejected" 1);
                  loop ()
              | Ok (id, req) ->
                  let shard = shard_of_key ~shards req.key in
                  (try Chan.push jobs.(shard) (Job { client; id; req })
                   with _ -> ());
                  loop ())
          | Ok other ->
              (try
                 client.link.Transport.send
                   (err_frame ~id:(-1)
                      (Printf.sprintf "unknown frame type %S" other))
               with _ -> ());
              loop ()
          | Error msg ->
              (try client.link.Transport.send (err_frame ~id:(-1) msg)
               with _ -> ());
              loop ())
    in
    loop ()
  in
  (* accept loop: ends when initiate_stop closes the listener *)
  let rec accept_loop () =
    match Transport.Tcp.accept listener with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        if Atomic.get stopping then () else accept_loop ()
    | exception _ -> ()
    | fd ->
        let link = Transport.Tcp.link ~max_frame:config.max_frame fd in
        incr client_counter;
        let client = { c_id = !client_counter; link } in
        Mutex.lock conns_m;
        Hashtbl.replace conns client.c_id client;
        Mutex.unlock conns_m;
        locked stats (fun () -> counter_add stats "serve.connections" 1);
        readers := Thread.create reader client :: !readers;
        accept_loop ()
  in
  accept_loop ();
  (* graceful shutdown: drain queued jobs (their responses still go
     out), then unhook the clients, then the stats endpoint *)
  Array.iter (fun q -> try Chan.push q Quit with _ -> ()) jobs;
  Array.iter Domain.join workers;
  (* poison the queues so a reader mid-push can't block forever now
     that no worker will ever drain them *)
  Array.iter (fun q -> Chan.fail q "daemon stopped") jobs;
  Mutex.lock conns_m;
  let live = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
  Mutex.unlock conns_m;
  List.iter (fun c -> c.link.Transport.close ()) live;
  List.iter Thread.join !readers;
  Option.iter Thread.join stats_thread

(* ---------------- client side ---------------- *)

let with_conn ?(host = "127.0.0.1") ~port f =
  match Transport.Tcp.connect (host, port) with
  | exception e -> Error (Printexc.to_string e)
  | fd ->
      let link = Transport.Tcp.link fd in
      Fun.protect ~finally:(fun () -> link.Transport.close ()) (fun () -> f link)

let submit ?host ~port requests =
  ignore_sigpipe ();
  with_conn ?host ~port @@ fun link ->
  (* pipeline: all requests out, then collect; the daemon interleaves
     shards, so responses return out of order and are matched by id *)
  match
    List.iteri (fun id r -> link.Transport.send (request_frame ~id r)) requests
  with
  | exception e -> Error (Printexc.to_string e)
  | () ->
      let rec collect acc = function
        | 0 -> Ok acc
        | k -> (
            match link.Transport.recv () with
            | Error e -> Error (Format.asprintf "%a" Wire.pp_read_error e)
            | Ok json -> (
                match parse_response json with
                | Error msg -> Error msg
                | Ok resp -> collect (resp :: acc) (k - 1)))
      in
      let* resps = collect [] (List.length requests) in
      Ok (List.sort (fun a b -> compare a.id b.id) resps)

let shutdown ?host ~port () =
  ignore_sigpipe ();
  with_conn ?host ~port @@ fun link ->
  match link.Transport.send shutdown_frame with
  | exception e -> Error (Printexc.to_string e)
  | () -> (
      match link.Transport.recv () with
      | Error e -> Error (Format.asprintf "%a" Wire.pp_read_error e)
      | Ok _ -> Ok ())

let fetch_stats ?(host = "127.0.0.1") ~port () =
  match Transport.Tcp.connect (host, port) with
  | exception e -> Error (Printexc.to_string e)
  | fd ->
      Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
      @@ fun () ->
      let req = "GET /metrics HTTP/1.0\r\n\r\n" in
      let b = Bytes.of_string req in
      ignore (Unix.write fd b 0 (Bytes.length b));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let k = Unix.read fd chunk 0 4096 in
        if k > 0 then begin
          Buffer.add_subbytes buf chunk 0 k;
          drain ()
        end
      in
      (try drain () with _ -> ());
      let all = Buffer.contents buf in
      (* split headers from body *)
      let body =
        match String.index_opt all '{' with
        | Some i -> String.sub all i (String.length all - i)
        | None -> ""
      in
      if body = "" then Error "no HTTP body"
      else Persist.of_string body
