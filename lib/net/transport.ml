(* Transport implementations behind one signature. A [link] is the
   duplex frame channel the node runner and the serve daemon actually
   program against — both implementations produce one, so everything
   above this module is transport-agnostic. *)

type link = {
  send : ?ctx:Wire.ctx -> Persist.json -> unit;
  recv : unit -> (Persist.json * Wire.ctx option, Wire.read_error) result;
  close : unit -> unit;
}

module type S = sig
  type address
  type listener
  type conn

  val listen : address -> listener
  val address : listener -> address
  val accept : listener -> conn
  val connect : address -> conn
  val link : ?max_frame:int -> conn -> link
  val close_listener : listener -> unit
end

(* ---------------- real TCP sockets ---------------- *)

module Tcp = struct
  type address = string * int
  type listener = { fd : Unix.file_descr; mutable open_ : bool }
  type conn = Unix.file_descr

  let resolve host =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> failwith (Printf.sprintf "Transport.Tcp: cannot resolve %S" host))

  let listen (host, port) =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    (try Unix.bind fd (Unix.ADDR_INET (resolve host, port))
     with e ->
       Unix.close fd;
       raise e);
    Unix.listen fd 128;
    { fd; open_ = true }

  let address l =
    match Unix.getsockname l.fd with
    | Unix.ADDR_INET (a, port) -> (Unix.string_of_inet_addr a, port)
    | _ -> assert false

  let accept l =
    let fd, _ = Unix.accept l.fd in
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    fd

  let connect (host, port) =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (resolve host, port))
     with e ->
       Unix.close fd;
       raise e);
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    fd

  let link ?max_frame fd =
    (* One mutex per direction: the node runner has a single sender
       thread per link, but the serve daemon fans shard workers into one
       connection, so sends must be atomic at the frame level. *)
    let wm = Mutex.create () in
    let closed = ref false in
    let cm = Mutex.create () in
    {
      send =
        (fun ?ctx json ->
          Mutex.lock wm;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock wm)
            (fun () -> Wire.write_frame ?ctx fd json));
      recv = (fun () -> Wire.read_frame ?max_frame fd);
      close =
        (fun () ->
          Mutex.lock cm;
          let fresh = not !closed in
          closed := true;
          Mutex.unlock cm;
          if fresh then begin
            (try Unix.shutdown fd Unix.SHUTDOWN_ALL
             with Unix.Unix_error _ -> ());
            try Unix.close fd with Unix.Unix_error _ -> ()
          end);
    }

  let close_listener l =
    if l.open_ then begin
      l.open_ <- false;
      (* close() alone does NOT wake a thread blocked in accept();
         shutdown() on the listening socket does (accept fails with
         EINVAL) — required for the daemon's graceful stop *)
      (try Unix.shutdown l.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close l.fd with Unix.Unix_error _ -> ()
    end
end

(* ---------------- in-process memory transport ----------------

   Frames still pass through [Wire.encode]/[Wire.decode], so the codec
   and framing layers are exercised exactly as over TCP; only the byte
   channel is a queue instead of a socket. *)

module Mem = struct
  (* One direction of a duplex channel: a queue of encoded frames. *)
  type pipe = {
    q : string Queue.t;
    m : Mutex.t;
    c : Condition.t;
    mutable closed : bool;
  }

  let pipe () =
    { q = Queue.create (); m = Mutex.create (); c = Condition.create (); closed = false }

  let pipe_close p =
    Mutex.lock p.m;
    p.closed <- true;
    Condition.broadcast p.c;
    Mutex.unlock p.m

  let pipe_send p frame =
    Mutex.lock p.m;
    let ok = not p.closed in
    if ok then begin
      Queue.push frame p.q;
      Condition.signal p.c
    end;
    Mutex.unlock p.m;
    if not ok then failwith "Transport.Mem: send on closed channel"

  let pipe_recv p =
    Mutex.lock p.m;
    while Queue.is_empty p.q && not p.closed do
      Condition.wait p.c p.m
    done;
    let r = if Queue.is_empty p.q then None else Some (Queue.pop p.q) in
    Mutex.unlock p.m;
    r

  type conn = { rx : pipe; tx : pipe }
  type address = string

  type listener = {
    name : string;
    pending : conn Queue.t;
    m : Mutex.t;
    c : Condition.t;
    mutable open_ : bool;
  }

  let registry : (string, listener) Hashtbl.t = Hashtbl.create 16
  let registry_m = Mutex.create ()
  let fresh = ref 0

  let listen name =
    Mutex.lock registry_m;
    let name =
      if name <> "" then name
      else begin
        incr fresh;
        Printf.sprintf "mem-%d" !fresh
      end
    in
    if Hashtbl.mem registry name then begin
      Mutex.unlock registry_m;
      failwith (Printf.sprintf "Transport.Mem: address %S in use" name)
    end;
    let l =
      {
        name;
        pending = Queue.create ();
        m = Mutex.create ();
        c = Condition.create ();
        open_ = true;
      }
    in
    Hashtbl.replace registry name l;
    Mutex.unlock registry_m;
    l

  let address l = l.name

  let connect name =
    let l =
      Mutex.lock registry_m;
      let r = Hashtbl.find_opt registry name in
      Mutex.unlock registry_m;
      match r with
      | Some l -> l
      | None -> failwith (Printf.sprintf "Transport.Mem: no listener at %S" name)
    in
    let a = pipe () and b = pipe () in
    let client = { rx = a; tx = b } and server = { rx = b; tx = a } in
    Mutex.lock l.m;
    let ok = l.open_ in
    if ok then begin
      Queue.push server l.pending;
      Condition.signal l.c
    end;
    Mutex.unlock l.m;
    if not ok then failwith (Printf.sprintf "Transport.Mem: listener %S closed" name);
    client

  let accept l =
    Mutex.lock l.m;
    while Queue.is_empty l.pending && l.open_ do
      Condition.wait l.c l.m
    done;
    let r = if Queue.is_empty l.pending then None else Some (Queue.pop l.pending) in
    Mutex.unlock l.m;
    match r with
    | Some conn -> conn
    | None -> failwith (Printf.sprintf "Transport.Mem: listener %S closed" l.name)

  let link ?max_frame conn =
    {
      send = (fun ?ctx json -> pipe_send conn.tx (Wire.encode ?ctx json));
      recv =
        (fun () ->
          match pipe_recv conn.rx with
          | None -> Error `Eof
          | Some frame -> (
              match Wire.decode ?max_frame frame with
              | Ok (json, ctx, consumed) when consumed = String.length frame ->
                  Ok (json, ctx)
              | Ok _ -> Error (`Corrupt "trailing bytes after frame")
              | Error _ as e -> e));
      close =
        (fun () ->
          pipe_close conn.tx;
          pipe_close conn.rx);
    }

  let close_listener l =
    Mutex.lock l.m;
    l.open_ <- false;
    Condition.broadcast l.c;
    Mutex.unlock l.m;
    Mutex.lock registry_m;
    (match Hashtbl.find_opt registry l.name with
    | Some l' when l' == l -> Hashtbl.remove registry l.name
    | _ -> ());
    Mutex.unlock registry_m
end
