(** Versioned length-prefixed framing over {!Persist} JSON — the wire
    format every networked component (peer links, the serve daemon, the
    stats endpoint's payload) speaks.

    One frame is a 9-byte binary header — the 4-byte magic ["RBVC"], a
    1-byte wire {!version}, a 4-byte big-endian payload length — followed
    by the Persist serialization of a single JSON value. The version
    lives in the binary header so incompatible peers fail on the first
    frame, before any JSON is parsed; the length prefix bounds every
    read, so a corrupt or hostile peer can neither stall a reader
    mid-value nor balloon its memory ({!default_max_frame}). *)

val magic : string
val version : int
val header_len : int

val default_max_frame : int
(** Frames whose declared payload exceeds this (16 MiB) are rejected as
    corrupt without being read. *)

type read_error = [ `Eof | `Corrupt of string ]
(** [`Eof] is a clean close on a frame boundary; anything else —
    mid-frame close, bad magic, version mismatch, oversized declaration,
    unparseable payload — is [`Corrupt]. *)

val pp_read_error : Format.formatter -> read_error -> unit

(** {1 Pure encode / decode} *)

val encode : Persist.json -> string
(** Header + payload as one string. *)

val decode :
  ?max_frame:int -> string -> (Persist.json * int, read_error) result
(** Decode one frame from the head of [s]; returns the value and the
    number of bytes consumed. Truncated input (header or payload) is
    [`Corrupt "truncated ..."], never a request for more bytes — the
    stream readers below handle incremental arrival. *)

(** {1 Blocking file-descriptor IO} *)

val write_frame : Unix.file_descr -> Persist.json -> unit
val read_frame :
  ?max_frame:int -> Unix.file_descr -> (Persist.json, read_error) result

(** {1 Payload helpers}

    Persist deliberately writes non-finite floats as [null] (JSON has no
    representation for them); wire payloads must round-trip every float
    exactly, so non-finite values travel as the tagged strings ["nan"],
    ["inf"], ["-inf"] — and negative zero as ["-0"], which Persist's
    writer would otherwise fold into [Int 0]. *)

val float_to_json : float -> Persist.json
val float_of_json : Persist.json -> (float, string) result
val vec_to_json : Vec.t -> Persist.json
val vec_of_json : Persist.json -> (Vec.t, string) result

val int_of_json : Persist.json -> (int, string) result
val field : string -> Persist.json -> (Persist.json, string) result
val int_field : string -> Persist.json -> (int, string) result
val string_field : string -> Persist.json -> (string, string) result
val list_field : string -> Persist.json -> (Persist.json list, string) result

(** {1 Message codecs} *)

type 'm codec = {
  proto : string;  (** protocol name, checked in the hello exchange *)
  enc : 'm -> Persist.json;
  dec : Persist.json -> ('m, string) result;
}
(** How one protocol's message type crosses the wire. The law the test
    suite pins with QCheck: [dec (enc m) = Ok m] for every message,
    including payloads holding non-finite floats and arbitrary (UTF-8)
    strings. *)

val codec :
  proto:string ->
  enc:('m -> Persist.json) ->
  dec:(Persist.json -> ('m, string) result) ->
  'm codec

val map_result : ('a -> 'b) -> ('a, 'e) result -> ('b, 'e) result
val list_dec :
  (Persist.json -> ('a, string) result) ->
  Persist.json list ->
  ('a list, string) result
(** Decode a homogeneous array, first error wins. *)
