(** Versioned length-prefixed framing over {!Persist} JSON — the wire
    format every networked component (peer links, the serve daemon, the
    stats endpoint's payload) speaks.

    One frame is a 10-byte binary header — the 4-byte magic ["RBVC"], a
    1-byte wire {!version}, a 1-byte flags field, a 4-byte big-endian
    body length — followed by the body: an optional 16-byte trace
    context (flags bit 0: two 8-byte big-endian ints, trace id then
    parent span) and the Persist serialization of a single JSON value.
    The version lives in the binary header so incompatible peers fail on
    the first frame, before any JSON is parsed; the length prefix bounds
    every read, so a corrupt or hostile peer can neither stall a reader
    mid-value nor balloon its memory ({!default_max_frame}). The trace
    context rides in the binary body prefix rather than the JSON, so
    cross-process trace propagation costs zero bytes on untraced frames
    and never perturbs payload encodings. Unknown flag bits are rejected
    as corrupt (a later version that needs them must bump {!version}). *)

val magic : string

val version : int
(** 2 — version 1 frames (no flags byte) are rejected on the first
    frame with a clear [`Corrupt] error naming both versions. *)

val header_len : int

type ctx = { trace_id : int; parent_span : int }
(** Trace context propagated across process boundaries: which
    distributed trace this frame belongs to and the span it is causally
    under. Values round-trip as 64-bit big-endian (OCaml's 63-bit ints
    are preserved exactly). *)

val default_max_frame : int
(** Frames whose declared payload exceeds this (16 MiB) are rejected as
    corrupt without being read. *)

type read_error = [ `Eof | `Corrupt of string ]
(** [`Eof] is a clean close on a frame boundary; anything else —
    mid-frame close, bad magic, version mismatch, oversized declaration,
    unparseable payload — is [`Corrupt]. *)

val pp_read_error : Format.formatter -> read_error -> unit

(** {1 Pure encode / decode} *)

val encode : ?ctx:ctx -> Persist.json -> string
(** Header + optional trace context + payload as one string. *)

val decode :
  ?max_frame:int ->
  string ->
  (Persist.json * ctx option * int, read_error) result
(** Decode one frame from the head of [s]; returns the value, its trace
    context if the frame carried one, and the number of bytes consumed.
    Truncated input (header or payload) is [`Corrupt "truncated ..."],
    never a request for more bytes — the stream readers below handle
    incremental arrival. *)

(** {1 Blocking file-descriptor IO} *)

val write_frame : ?ctx:ctx -> Unix.file_descr -> Persist.json -> unit

val read_frame :
  ?max_frame:int ->
  Unix.file_descr ->
  (Persist.json * ctx option, read_error) result

(** {1 Payload helpers}

    Persist deliberately writes non-finite floats as [null] (JSON has no
    representation for them); wire payloads must round-trip every float
    exactly, so non-finite values travel as the tagged strings ["nan"],
    ["inf"], ["-inf"] — and negative zero as ["-0"], which Persist's
    writer would otherwise fold into [Int 0]. *)

val float_to_json : float -> Persist.json
val float_of_json : Persist.json -> (float, string) result
val vec_to_json : Vec.t -> Persist.json
val vec_of_json : Persist.json -> (Vec.t, string) result

val int_of_json : Persist.json -> (int, string) result
val field : string -> Persist.json -> (Persist.json, string) result
val int_field : string -> Persist.json -> (int, string) result
val string_field : string -> Persist.json -> (string, string) result
val list_field : string -> Persist.json -> (Persist.json list, string) result

(** {1 Message codecs} *)

type 'm codec = {
  proto : string;  (** protocol name, checked in the hello exchange *)
  enc : 'm -> Persist.json;
  dec : Persist.json -> ('m, string) result;
}
(** How one protocol's message type crosses the wire. The law the test
    suite pins with QCheck: [dec (enc m) = Ok m] for every message,
    including payloads holding non-finite floats and arbitrary (UTF-8)
    strings. *)

val codec :
  proto:string ->
  enc:('m -> Persist.json) ->
  dec:(Persist.json -> ('m, string) result) ->
  'm codec

val map_result : ('a -> 'b) -> ('a, 'e) result -> ('b, 'e) result
val list_dec :
  (Persist.json -> ('a, string) result) ->
  Persist.json list ->
  ('a list, string) result
(** Decode a homogeneous array, first error wins. *)
