(** Lock-step execution of an unmodified engine protocol over real
    transport links — the networked twin of
    [Engine.run ~scheduler:Rounds] with [Fault.none].

    The same {!Protocol.t} value runs unchanged: carry seeded by
    [on_start], outbox [carry @ on_tick] each round, delivery batches in
    ascending source order with self-sends in place, [on_receive] called
    unconditionally every round. The round barrier is the wire itself —
    one frame per (round, edge), sent even when the batch is empty — so
    decision vectors over loopback TCP are {e byte-identical} to the
    simulator's on the same [(protocol, n, rounds)] (pinned by the
    equivalence tests). *)

val default_queue_cap : int
(** Frames buffered per outgoing edge before the protocol loop blocks
    (64) — backpressure per peer, not per node. *)

val run :
  ?queue_cap:int ->
  ?trace_ctx:Wire.ctx ->
  ?topology:Topology.t ->
  protocol:('s, 'm, 'o) Protocol.t ->
  codec:'m Wire.codec ->
  links:Transport.link option array ->
  me:int ->
  rounds:int ->
  unit ->
  's
(** Run process [me] of an [n = Array.length links] cluster for
    [rounds] rounds and return its final state (apply
    [protocol.output] to read the decision, as with engine outcomes).
    [links.(j)] connects to peer [j]; the entry at [me] must be [None],
    every other adjacent entry must be present. With [topology] set
    (default complete), links exist {e exactly} for the graph's edges —
    a link to a non-adjacent peer, like a missing link to an adjacent
    one, is [Invalid_argument] — sends addressed to a non-adjacent peer
    are silently filtered (the engine's semantics), and non-adjacent
    sources contribute nothing to a round's batch. Each link gets a
    sender thread behind a bounded queue and a receiver thread; the
    first frame each way is a hello carrying (protocol name, peer id,
    round count, and on incomplete graphs the {!Topology.hash} of the
    graph), and any mismatch — or a corrupt / truncated / closed
    channel — fails the run with [Failure]. Links are closed on return,
    error included.

    [trace_ctx] stamps every outgoing frame with a distributed trace
    context; a peer context arriving on an incoming batch is {e
    adopted} — recorded as a ["ctx.adopt"] instant on the caller's
    tracer (when one is installed) so this node's spans stitch into
    the sender's trace via {!Trace_export.merge}. *)

val cluster :
  ?queue_cap:int ->
  ?topology:Topology.t ->
  transport:
    (module Transport.S
       with type address = 'a
        and type listener = 'l
        and type conn = 'c) ->
  bind:'a ->
  protocol:('s, 'm, 'o) Protocol.t ->
  codec:'m Wire.codec ->
  n:int ->
  rounds:int ->
  unit ->
  's array
(** Loopback harness over the [topology]'s edges (default complete —
    full mesh): [n] listeners on fresh addresses first (so no dial
    races an unbound address), then one thread per node — node [i]
    dials every adjacent [j < i] (announcing itself in its first frame)
    and accepts every adjacent [j > i]; only real edges get sockets —
    each running {!run} with the same graph. Returns the final states
    in process order; any node failure fails the whole cluster with
    every node's error collected. *)

val cluster_tcp :
  ?queue_cap:int ->
  ?topology:Topology.t ->
  protocol:('s, 'm, 'o) Protocol.t ->
  codec:'m Wire.codec ->
  n:int ->
  rounds:int ->
  unit ->
  's array
(** {!cluster} over real TCP sockets on 127.0.0.1, ephemeral ports. *)

val cluster_mem :
  ?queue_cap:int ->
  ?topology:Topology.t ->
  protocol:('s, 'm, 'o) Protocol.t ->
  codec:'m Wire.codec ->
  n:int ->
  rounds:int ->
  unit ->
  's array
(** {!cluster} over the in-memory transport. *)
