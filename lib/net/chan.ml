(* Bounded blocking queue shared by the node runner (per-peer frame
   queues) and the serve daemon (per-shard job queues). Failure is
   first-class: [fail] poisons the channel so every blocked or future
   producer/consumer raises instead of deadlocking — how an IO error on
   one thread surfaces in the thread that owns the protocol loop. *)

type 'a t = {
  q : 'a Queue.t;
  cap : int;
  m : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  mutable failed : string option;
}

let make cap =
  if cap < 1 then invalid_arg "Chan.make: cap must be >= 1";
  {
    q = Queue.create ();
    cap;
    m = Mutex.create ();
    nonempty = Condition.create ();
    nonfull = Condition.create ();
    failed = None;
  }

let fail t msg =
  Mutex.lock t.m;
  if t.failed = None then t.failed <- Some msg;
  Condition.broadcast t.nonempty;
  Condition.broadcast t.nonfull;
  Mutex.unlock t.m

let push t x =
  Mutex.lock t.m;
  while Queue.length t.q >= t.cap && t.failed = None do
    Condition.wait t.nonfull t.m
  done;
  match t.failed with
  | Some msg ->
      Mutex.unlock t.m;
      failwith msg
  | None ->
      Queue.push x t.q;
      Condition.signal t.nonempty;
      Mutex.unlock t.m

(* Pending items drain before the failure is raised, so a consumer sees
   everything produced before the poisoning. *)
let pop t =
  Mutex.lock t.m;
  while Queue.is_empty t.q && t.failed = None do
    Condition.wait t.nonempty t.m
  done;
  if Queue.is_empty t.q then begin
    let msg = Option.get t.failed in
    Mutex.unlock t.m;
    failwith msg
  end
  else begin
    let x = Queue.pop t.q in
    Condition.signal t.nonfull;
    Mutex.unlock t.m;
    x
  end
