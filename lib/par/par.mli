(** A from-scratch deterministic parallel runtime on OCaml 5 domains.

    One process-wide pool of worker domains is started lazily on the
    first parallel call and sized from {!Domain.recommended_domain_count}
    (workers are spawned on demand, never more than a small cap). Work is
    submitted in {e batches} of independent tasks; the submitting domain
    always participates in draining its own batch, so nested parallel
    calls from inside a task cannot deadlock — at worst they degrade to
    sequential execution on the calling domain.

    Determinism contract: {!map} returns results in input order and
    {!iter_chunks} partitions [0..n-1] into contiguous ranges, so as long
    as each task is a pure function of its index (derive per-task
    randomness with {!Rng.stream}-style index hashing, never from a
    shared generator), the observable output is bit-identical to a
    sequential run — [jobs] only changes wall-clock time. If several
    tasks raise, the exception of the {e lowest} task index is re-raised
    (with its backtrace), matching what a sequential left-to-right run
    would surface first. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()] — an upper bound on useful
    parallelism on this machine. *)

val default_jobs : unit -> int
(** The job count CLI entry points should use when the user gave none:
    the [RBVC_JOBS] environment variable if set to a positive integer,
    otherwise {!available_cores}. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f arr] is [Array.map f arr] with the applications spread
    over [jobs] domains (the caller plus [jobs - 1] pool workers).
    Results are in input order. [jobs <= 1] (the default) runs on the
    calling domain without touching the pool. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists (order preserved). *)

val iter_chunks : ?jobs:int -> n:int -> (lo:int -> hi:int -> unit) -> unit
(** [iter_chunks ~jobs ~n f] covers the index range [0..n-1] with
    disjoint contiguous chunks [f ~lo ~hi] (half-open: [lo <= i < hi]),
    executed in parallel. More chunks than jobs are created so uneven
    chunk costs load-balance. [jobs <= 1] performs the single call
    [f ~lo:0 ~hi:n]. *)
