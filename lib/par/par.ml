(* A minimal deterministic fork/join pool over OCaml 5 domains.

   Design constraints, in order:

   - determinism: parallelism must never change observable results, so
     every primitive assigns work by index and reports by index;
   - nested-use safety: a task may itself call [map]. The submitter of a
     batch always drains that batch itself (workers merely help), so a
     nested call completes even when every worker is busy elsewhere —
     worst case it degrades to sequential execution on the caller;
   - frugality: worker domains are spawned lazily, only as many as a
     batch can actually use, and are reused for the process lifetime
     (domains are ~ms to spawn; the experiment suite submits thousands
     of batches). *)

type batch = {
  total : int;
  run_task : int -> unit;  (* must not raise; errors are recorded *)
  next : int Atomic.t;  (* next unclaimed task index *)
  unfinished : int Atomic.t;  (* tasks not yet completed *)
  mutable helpers : int;  (* worker seats still unclaimed *)
}

type pool = {
  lock : Mutex.t;
  work : Condition.t;  (* signalled when a batch wants helpers *)
  finished : Condition.t;  (* signalled when some batch completes *)
  mutable pending : batch list;  (* batches still accepting helpers *)
  mutable workers : int;  (* worker domains spawned so far *)
}

let pool =
  {
    lock = Mutex.create ();
    work = Condition.create ();
    finished = Condition.create ();
    pending = [];
    workers = 0;
  }

(* Hard cap on pool size: enough for any realistic core count here,
   far below the runtime's 128-domain limit even with other users. *)
let max_workers = 15

let available_cores () = Domain.recommended_domain_count ()

let default_jobs () =
  match Sys.getenv_opt "RBVC_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ -> available_cores ())
  | None -> available_cores ()

(* Claim-and-run tasks of [b] until none are left to claim. Each
   completion decrements [unfinished]; whoever finishes the last task
   wakes the submitter. *)
let drain b =
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add b.next 1 in
    if i >= b.total then continue_ := false
    else begin
      b.run_task i;
      if Atomic.fetch_and_add b.unfinished (-1) = 1 then begin
        Mutex.lock pool.lock;
        Condition.broadcast pool.finished;
        Mutex.unlock pool.lock
      end
    end
  done

let rec worker () =
  Mutex.lock pool.lock;
  let rec take () =
    pool.pending <-
      List.filter
        (fun b -> b.helpers > 0 && Atomic.get b.next < b.total)
        pool.pending;
    match pool.pending with
    | b :: _ ->
        b.helpers <- b.helpers - 1;
        b
    | [] ->
        Condition.wait pool.work pool.lock;
        take ()
  in
  let b = take () in
  Mutex.unlock pool.lock;
  drain b;
  worker ()

(* With [pool.lock] held: grow the pool towards [wanted] workers. *)
let ensure_workers wanted =
  let wanted = Int.min wanted max_workers in
  while pool.workers < wanted do
    ignore (Domain.spawn worker : unit Domain.t);
    pool.workers <- pool.workers + 1
  done

(* Run [total] independent tasks, sharing them with up to [jobs - 1]
   workers. Exceptions raised by tasks are recorded per index and the
   lowest-index one is re-raised after the whole batch has run — the
   same exception a sequential left-to-right run over all indices would
   pick, so jobs > 1 cannot change which error escapes. *)
let run_batch ~jobs ~total task =
  if total > 0 then begin
    let errors = Array.make total None in
    let run_task i =
      try task i
      with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
    in
    let jobs = Int.max 1 (Int.min jobs total) in
    if jobs = 1 then
      for i = 0 to total - 1 do
        run_task i
      done
    else begin
      let b =
        {
          total;
          run_task;
          next = Atomic.make 0;
          unfinished = Atomic.make total;
          helpers = jobs - 1;
        }
      in
      Mutex.lock pool.lock;
      ensure_workers (jobs - 1);
      pool.pending <- pool.pending @ [ b ];
      Condition.broadcast pool.work;
      Mutex.unlock pool.lock;
      drain b;
      Mutex.lock pool.lock;
      while Atomic.get b.unfinished > 0 do
        Condition.wait pool.finished pool.lock
      done;
      b.helpers <- 0;
      pool.pending <- List.filter (fun b' -> b' != b) pool.pending;
      Mutex.unlock pool.lock
    end;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors
  end

let map ?(jobs = 1) f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run_batch ~jobs ~total:n (fun i -> results.(i) <- Some (f arr.(i)));
    Array.map
      (function Some v -> v | None -> assert false (* run_batch ran all *))
      results
  end

let map_list ?jobs f l = Array.to_list (map ?jobs f (Array.of_list l))

let iter_chunks ?(jobs = 1) ~n f =
  if n < 0 then invalid_arg "Par.iter_chunks: negative n";
  if n > 0 then begin
    let jobs = Int.max 1 jobs in
    (* over-decompose ~4x so a slow chunk doesn't idle the other jobs *)
    let nchunks = if jobs = 1 then 1 else Int.min n (4 * jobs) in
    let base = n / nchunks and extra = n mod nchunks in
    run_batch ~jobs ~total:nchunks (fun c ->
        let lo = (c * base) + Int.min c extra in
        let hi = lo + base + if c < extra then 1 else 0 in
        f ~lo ~hi)
  end
