type t = { rows : int; cols : int; a : float array array }

let create rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: non-positive dims";
  { rows; cols; a = Array.make_matrix rows cols 0. }

let init rows cols f =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.init: non-positive dims";
  { rows; cols; a = Array.init rows (fun i -> Array.init cols (fun j -> f i j)) }

let of_rows = function
  | [] -> invalid_arg "Matrix.of_rows: empty"
  | r0 :: _ as rows ->
      let cols = Vec.dim r0 in
      List.iter
        (fun r ->
          if Vec.dim r <> cols then invalid_arg "Matrix.of_rows: ragged rows")
        rows;
      { rows = List.length rows;
        cols;
        a = Array.of_list (List.map Array.copy rows) }

let of_cols cols_list =
  let m = of_rows cols_list in
  (* rows of [m] are the desired columns; transpose below. *)
  { rows = m.cols;
    cols = m.rows;
    a = Array.init m.cols (fun i -> Array.init m.rows (fun j -> m.a.(j).(i))) }

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let copy m = { m with a = Array.map Array.copy m.a }
let get m i j = m.a.(i).(j)
let set m i j x = m.a.(i).(j) <- x
let row m i = Array.copy m.a.(i)
let col m j = Array.init m.rows (fun i -> m.a.(i).(j))

let transpose m = init m.cols m.rows (fun i j -> m.a.(j).(i))

(* The multiply kernels are explicit loops with hoisted rows and unsafe
   indexing (dimensions checked once on entry; row lengths are a type
   invariant); the accumulation order matches the closure-based
   originals, so results are bit-identical. *)

let mul x y =
  if x.cols <> y.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let r = create x.rows y.cols in
  for i = 0 to x.rows - 1 do
    let xi = Array.unsafe_get x.a i in
    let ri = Array.unsafe_get r.a i in
    for j = 0 to y.cols - 1 do
      let s = ref 0. in
      for k = 0 to x.cols - 1 do
        s :=
          !s
          +. (Array.unsafe_get xi k
              *. Array.unsafe_get (Array.unsafe_get y.a k) j)
      done;
      Array.unsafe_set ri j !s
    done
  done;
  r

let mul_vec_into dst m v =
  if m.cols <> Vec.dim v then
    invalid_arg "Matrix.mul_vec_into: dimension mismatch";
  if Vec.dim dst <> m.rows then
    invalid_arg "Matrix.mul_vec_into: destination dimension mismatch";
  for i = 0 to m.rows - 1 do
    let mi = Array.unsafe_get m.a i in
    let s = ref 0. in
    for j = 0 to m.cols - 1 do
      s := !s +. (Array.unsafe_get mi j *. Array.unsafe_get v j)
    done;
    Array.unsafe_set dst i !s
  done

let mul_vec m v =
  if m.cols <> Vec.dim v then invalid_arg "Matrix.mul_vec: dimension mismatch";
  let dst = Array.make m.rows 0. in
  mul_vec_into dst m v;
  dst

let map2 name f x y =
  if x.rows <> y.rows || x.cols <> y.cols then
    invalid_arg ("Matrix." ^ name ^ ": dimension mismatch");
  init x.rows x.cols (fun i j -> f x.a.(i).(j) y.a.(i).(j))

let add x y = map2 "add" ( +. ) x y
let sub x y = map2 "sub" ( -. ) x y
let scale c m = init m.rows m.cols (fun i j -> c *. m.a.(i).(j))

let equal ?(eps = 1e-9) x y =
  x.rows = y.rows && x.cols = y.cols
  &&
  let ok = ref true in
  for i = 0 to x.rows - 1 do
    for j = 0 to x.cols - 1 do
      if Float.abs (x.a.(i).(j) -. y.a.(i).(j)) > eps then ok := false
    done
  done;
  !ok

let lu_decompose m =
  if m.rows <> m.cols then invalid_arg "Matrix.lu_decompose: not square";
  let n = m.rows in
  let lu = copy m in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1 in
  let ok = ref true in
  (try
     for k = 0 to n - 1 do
       (* partial pivoting *)
       let pivot = ref k in
       for i = k + 1 to n - 1 do
         if Float.abs lu.a.(i).(k) > Float.abs lu.a.(!pivot).(k) then pivot := i
       done;
       if !pivot <> k then begin
         let tmp = lu.a.(k) in
         lu.a.(k) <- lu.a.(!pivot);
         lu.a.(!pivot) <- tmp;
         let tp = perm.(k) in
         perm.(k) <- perm.(!pivot);
         perm.(!pivot) <- tp;
         sign := - !sign
       end;
       if Float.abs lu.a.(k).(k) < 1e-12 then begin
         ok := false;
         raise Exit
       end;
       for i = k + 1 to n - 1 do
         let factor = lu.a.(i).(k) /. lu.a.(k).(k) in
         lu.a.(i).(k) <- factor;
         for j = k + 1 to n - 1 do
           lu.a.(i).(j) <- lu.a.(i).(j) -. (factor *. lu.a.(k).(j))
         done
       done
     done
   with Exit -> ());
  if !ok then Some (lu, perm, !sign) else None

let lu_solve (lu, perm, _sign) b =
  let n = lu.rows in
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution with unit lower triangle *)
  for i = 1 to n - 1 do
    let li = Array.unsafe_get lu.a i in
    let xi = ref (Array.unsafe_get x i) in
    for j = 0 to i - 1 do
      xi := !xi -. (Array.unsafe_get li j *. Array.unsafe_get x j)
    done;
    Array.unsafe_set x i !xi
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let li = Array.unsafe_get lu.a i in
    let xi = ref (Array.unsafe_get x i) in
    for j = i + 1 to n - 1 do
      xi := !xi -. (Array.unsafe_get li j *. Array.unsafe_get x j)
    done;
    Array.unsafe_set x i (!xi /. Array.unsafe_get li i)
  done;
  x

let solve m b =
  if m.rows <> Vec.dim b then invalid_arg "Matrix.solve: dimension mismatch";
  Option.map (fun lu -> lu_solve lu b) (lu_decompose m)

let inverse m =
  match lu_decompose m with
  | None -> None
  | Some lu ->
      let n = m.rows in
      let inv = create n n in
      for j = 0 to n - 1 do
        let x = lu_solve lu (Vec.basis n j) in
        for i = 0 to n - 1 do
          inv.a.(i).(j) <- x.(i)
        done
      done;
      Some inv

let determinant m =
  match lu_decompose m with
  | None -> 0.
  | Some (lu, _, sign) ->
      let d = ref (float_of_int sign) in
      for i = 0 to m.rows - 1 do
        d := !d *. lu.a.(i).(i)
      done;
      !d

(* Row echelon form with partial pivoting; returns pivot column list. *)
let row_echelon ?(eps = 1e-9) m =
  let w = copy m in
  let scale_factor =
    Array.fold_left
      (fun acc r -> Array.fold_left (fun a x -> Float.max a (Float.abs x)) acc r)
      1. w.a
  in
  let tol = eps *. scale_factor in
  let pivots = ref [] in
  let r = ref 0 in
  let c = ref 0 in
  while !r < w.rows && !c < w.cols do
    let pivot = ref !r in
    for i = !r + 1 to w.rows - 1 do
      if Float.abs w.a.(i).(!c) > Float.abs w.a.(!pivot).(!c) then pivot := i
    done;
    if Float.abs w.a.(!pivot).(!c) <= tol then incr c
    else begin
      if !pivot <> !r then begin
        let tmp = w.a.(!r) in
        w.a.(!r) <- w.a.(!pivot);
        w.a.(!pivot) <- tmp
      end;
      for i = 0 to w.rows - 1 do
        if i <> !r then begin
          let factor = w.a.(i).(!c) /. w.a.(!r).(!c) in
          for j = !c to w.cols - 1 do
            w.a.(i).(j) <- w.a.(i).(j) -. (factor *. w.a.(!r).(j))
          done
        end
      done;
      pivots := (!r, !c) :: !pivots;
      incr r;
      incr c
    end
  done;
  (w, List.rev !pivots)

let rank ?eps m =
  let _, pivots = row_echelon ?eps m in
  List.length pivots

let null_space ?eps m =
  let w, pivots = row_echelon ?eps m in
  let pivot_cols = List.map snd pivots in
  let is_pivot c = List.mem c pivot_cols in
  let free_cols =
    List.filter (fun c -> not (is_pivot c)) (List.init m.cols (fun j -> j))
  in
  let basis_for free_col =
    let x = Vec.zero m.cols in
    x.(free_col) <- 1.;
    List.iter
      (fun (r, c) -> x.(c) <- -.w.a.(r).(free_col) /. w.a.(r).(c))
      pivots;
    x
  in
  List.map basis_for free_cols

let gram_schmidt ?(eps = 1e-9) vs =
  let ortho = ref [] in
  List.iter
    (fun v ->
      let u =
        List.fold_left (fun u q -> Vec.axpy (-.Vec.dot u q) q u) (Vec.copy v)
          !ortho
      in
      let n = Vec.norm2 u in
      if n > eps then ortho := !ortho @ [ Vec.scale (1. /. n) u ])
    vs;
  !ortho

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iter (fun r -> Format.fprintf ppf "%a@," Vec.pp r) m.a;
  Format.fprintf ppf "@]"
