(** Dense d-dimensional real vectors and the Lp-norm family used throughout
    the paper (Section 3).

    A vector is a [float array]; functions never mutate their arguments
    unless the name says so. The [_into] variants write their result into
    a caller-supplied destination so inner loops can reuse scratch
    buffers instead of allocating per call; everything else is
    persistent. Dimensions are validated eagerly and mismatches raise
    [Invalid_argument]. *)

type t = float array

(** {1 Construction} *)

val make : int -> float -> t
(** [make d x] is the d-dimensional vector with every coordinate [x]. *)

val zero : int -> t
(** [zero d] is the all-zeros vector of dimension [d]. *)

val ones : int -> t
(** [ones d] is the all-ones vector of dimension [d]. *)

val basis : int -> int -> t
(** [basis d i] is the i-th standard basis vector (0-indexed) in R^d. *)

val init : int -> (int -> float) -> t
(** [init d f] is [| f 0; ...; f (d-1) |]. *)

val of_list : float list -> t
val to_list : t -> float list
val copy : t -> t
val dim : t -> int

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y]. *)

val dot : t -> t -> float
val map2 : (float -> float -> float) -> t -> t -> t

(** {2 In-place variants}

    [op_into dst ...] computes the same result as [op ...] but stores it
    in [dst] (which must have the operands' dimension and may alias an
    operand) instead of allocating. Bit-identical to the allocating
    versions — same float operations in the same order. *)

val add_into : t -> t -> t -> unit
(** [add_into dst u v] sets [dst := u + v]. *)

val sub_into : t -> t -> t -> unit
(** [sub_into dst u v] sets [dst := u - v]. *)

val axpy_into : t -> float -> t -> t -> unit
(** [axpy_into dst a x y] sets [dst := a*x + y]. *)

val scale_into : t -> float -> t -> unit
(** [scale_into dst a u] sets [dst := a*u]. *)

val lerp : float -> t -> t -> t
(** [lerp t u v] is [(1-t)*u + t*v]. *)

val combo : (float * t) list -> t
(** [combo [(w1,v1); ...]] is the linear combination [w1*v1 + ...].
    @raise Invalid_argument on empty list or dimension mismatch. *)

val combo_arrays_into : t -> float array -> t array -> int -> unit
(** [combo_arrays_into dst ws vs k] sets
    [dst := sum_(j < k) ws.(j) * vs.(j)] — the allocation-free [combo]
    for inner loops that keep weights and points in parallel arrays.
    [dst] must not alias an element of [vs]. *)

val centroid : t list -> t
(** Arithmetic mean of a non-empty list of vectors. *)

(** {1 Norms and distances}

    [norm_p p v] is the Lp norm [(sum_i |v_i|^p)^(1/p)] for finite
    [p >= 1], and the max-norm when [p = infinity]. The paper uses L2 for
    (delta,2)-consensus, L-infinity for epsilon-agreement, and general Lp
    for Theorem 14. *)

val norm_p : float -> t -> float
val norm2 : t -> float
val norm_inf : t -> float
val norm1 : t -> float
val dist_p : float -> t -> t -> float
val dist2 : t -> t -> float
val dist_inf : t -> t -> float
val dist1 : t -> t -> float
val sq_dist2 : t -> t -> float
(** Distances stream over coordinate differences without allocating the
    difference vector; bit-identical to [norm_* (sub u v)]. *)

val sq_norm2 : t -> float
val normalize : t -> t
(** [normalize v] is [v / ||v||_2]. @raise Invalid_argument on (near-)zero
    vectors (L2 norm below [1e-300]). *)

(** {1 Comparisons} *)

val equal : ?eps:float -> t -> t -> bool
(** Coordinate-wise equality within absolute tolerance [eps]
    (default [1e-9]). *)

val compare_lex : t -> t -> int
(** Total lexicographic order; used for deterministic tie-breaking so that
    all non-faulty processes pick the identical output (Agreement). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
