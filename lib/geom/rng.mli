(** Deterministic random generation for experiments and property tests.

    All experiment sweeps are seeded so that every run of the harness
    reproduces the same numbers. Wraps [Random.State] and adds the point
    distributions the experiments need. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val stream : root:int -> int -> t
(** [stream ~root i] is the [i]-th member of a family of independent
    generators determined solely by [(root, i)] (a splitmix64-style hash
    seeds {!create}). Unlike {!split} it consumes no generator state, so
    parallel tasks can each derive their own stream from a shared root
    seed and produce output identical to a sequential run. *)

val float : t -> float -> float
(** Uniform in [\[0, bound)]. *)

val uniform : t -> lo:float -> hi:float -> float
val int : t -> int -> int
val bool : t -> bool
val gaussian : t -> float
(** Standard normal (Box-Muller). *)

val point_box : t -> dim:int -> lo:float -> hi:float -> Vec.t
(** Uniform point in an axis-aligned box. *)

val point_ball : t -> dim:int -> radius:float -> Vec.t
(** Uniform point in the L2 ball of given radius (Gaussian + radial). *)

val point_sphere : t -> dim:int -> radius:float -> Vec.t
(** Uniform point on the L2 sphere. *)

val cloud : t -> n:int -> dim:int -> lo:float -> hi:float -> Vec.t list
(** [n] i.i.d. box points. *)

val simplex_vertices : t -> dim:int -> Vec.t list
(** [dim + 1] points in R^dim that are affinely independent (rejection
    sampled from the unit box; resamples on near-degeneracy). *)

val shuffle : t -> 'a list -> 'a list
val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)
