type t = float array

let dim = Array.length

let check_same_dim name u v =
  if Array.length u <> Array.length v then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
         (Array.length u) (Array.length v))

let make d x =
  if d <= 0 then invalid_arg "Vec.make: dimension must be positive";
  Array.make d x

let zero d = make d 0.
let ones d = make d 1.

let basis d i =
  if i < 0 || i >= d then invalid_arg "Vec.basis: index out of range";
  let v = make d 0. in
  v.(i) <- 1.;
  v

let init d f =
  if d <= 0 then invalid_arg "Vec.init: dimension must be positive";
  Array.init d f

let of_list l =
  if l = [] then invalid_arg "Vec.of_list: empty list";
  Array.of_list l

let to_list = Array.to_list
let copy = Array.copy

(* The binary kernels below are explicit loops over preallocated arrays
   rather than [Array.init] with a closure: the hot paths (LP pivoting,
   Frank-Wolfe line search, subgradient descent) call them millions of
   times and the closure allocation + indirect call dominate. The
   float-operation order is unchanged, so results are bit-identical. *)

let map2 f u v =
  check_same_dim "map2" u v;
  let n = dim u in
  let r = Array.make n 0. in
  for i = 0 to n - 1 do
    r.(i) <- f u.(i) v.(i)
  done;
  r

(* Bounds are established once by [check_same_dim] (or the [Array.make]
   of the result), so the inner loops index unsafely. *)

let add u v =
  check_same_dim "add" u v;
  let n = dim u in
  let r = Array.make n 0. in
  for i = 0 to n - 1 do
    Array.unsafe_set r i (Array.unsafe_get u i +. Array.unsafe_get v i)
  done;
  r

let sub u v =
  check_same_dim "sub" u v;
  let n = dim u in
  let r = Array.make n 0. in
  for i = 0 to n - 1 do
    Array.unsafe_set r i (Array.unsafe_get u i -. Array.unsafe_get v i)
  done;
  r

let neg u =
  let n = dim u in
  let r = Array.make n 0. in
  for i = 0 to n - 1 do
    Array.unsafe_set r i (-.Array.unsafe_get u i)
  done;
  r

let scale a u =
  let n = dim u in
  let r = Array.make n 0. in
  for i = 0 to n - 1 do
    Array.unsafe_set r i (a *. Array.unsafe_get u i)
  done;
  r

let axpy a x y =
  check_same_dim "axpy" x y;
  let n = dim x in
  let r = Array.make n 0. in
  for i = 0 to n - 1 do
    Array.unsafe_set r i
      ((a *. Array.unsafe_get x i) +. Array.unsafe_get y i)
  done;
  r

(* In-place variants for scratch-buffer reuse in inner loops. [dst] may
   alias an input. *)

let add_into dst u v =
  check_same_dim "add_into" u v;
  check_same_dim "add_into" dst u;
  for i = 0 to dim u - 1 do
    Array.unsafe_set dst i (Array.unsafe_get u i +. Array.unsafe_get v i)
  done

let sub_into dst u v =
  check_same_dim "sub_into" u v;
  check_same_dim "sub_into" dst u;
  for i = 0 to dim u - 1 do
    Array.unsafe_set dst i (Array.unsafe_get u i -. Array.unsafe_get v i)
  done

let axpy_into dst a x y =
  check_same_dim "axpy_into" x y;
  check_same_dim "axpy_into" dst x;
  for i = 0 to dim x - 1 do
    Array.unsafe_set dst i
      ((a *. Array.unsafe_get x i) +. Array.unsafe_get y i)
  done

let scale_into dst a u =
  check_same_dim "scale_into" dst u;
  for i = 0 to dim u - 1 do
    Array.unsafe_set dst i (a *. Array.unsafe_get u i)
  done

let dot u v =
  check_same_dim "dot" u v;
  let s = ref 0. in
  for i = 0 to dim u - 1 do
    s := !s +. (Array.unsafe_get u i *. Array.unsafe_get v i)
  done;
  !s

let lerp t u v =
  check_same_dim "lerp" u v;
  let n = dim u in
  let r = Array.make n 0. in
  for i = 0 to n - 1 do
    r.(i) <- ((1. -. t) *. u.(i)) +. (t *. v.(i))
  done;
  r

let combo = function
  | [] -> invalid_arg "Vec.combo: empty combination"
  | (w0, v0) :: rest ->
      let acc = scale w0 v0 in
      List.iter
        (fun (w, v) ->
          check_same_dim "combo" acc v;
          for i = 0 to dim acc - 1 do
            Array.unsafe_set acc i
              (Array.unsafe_get acc i +. (w *. Array.unsafe_get v i))
          done)
        rest;
      acc

(* [combo_arrays_into dst ws vs k] accumulates [sum_{j<k} ws.(j) * vs.(j)]
   into [dst] — the allocation-free kernel behind convex-combination
   reconstruction in inner loops. *)
let combo_arrays_into dst ws vs k =
  if k > Array.length ws || k > Array.length vs then
    invalid_arg "Vec.combo_arrays_into: k out of range";
  Array.fill dst 0 (dim dst) 0.;
  for j = 0 to k - 1 do
    let w = Array.unsafe_get ws j in
    let v = vs.(j) in
    check_same_dim "combo_arrays_into" dst v;
    for i = 0 to dim dst - 1 do
      Array.unsafe_set dst i
        (Array.unsafe_get dst i +. (w *. Array.unsafe_get v i))
    done
  done

let centroid = function
  | [] -> invalid_arg "Vec.centroid: empty list"
  | vs ->
      let n = List.length vs in
      let w = 1. /. float_of_int n in
      combo (List.map (fun v -> (w, v)) vs)

let norm_inf v = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0. v
let norm1 v = Array.fold_left (fun s x -> s +. Float.abs x) 0. v

let sq_norm2 v =
  let s = ref 0. in
  for i = 0 to dim v - 1 do
    let x = Array.unsafe_get v i in
    s := !s +. (x *. x)
  done;
  !s

let norm2 v = sqrt (sq_norm2 v)

let norm_p p v =
  if p < 1. then invalid_arg "Vec.norm_p: p must be >= 1";
  if p = 2. then norm2 v
  else if p = 1. then norm1 v
  else if p = Float.infinity then norm_inf v
  else begin
    (* Scale by the max coordinate to avoid overflow for large p. *)
    let m = norm_inf v in
    if m = 0. then 0.
    else
      let s =
        Array.fold_left (fun s x -> s +. (Float.abs x /. m) ** p) 0. v
      in
      m *. (s ** (1. /. p))
  end

(* Distances stream over the coordinate differences without
   materializing [sub u v]; the float-operation order matches the
   allocating formulation, so results are bit-identical. *)

let sq_dist2 u v =
  check_same_dim "sq_dist2" u v;
  let s = ref 0. in
  for i = 0 to dim u - 1 do
    let x = Array.unsafe_get u i -. Array.unsafe_get v i in
    s := !s +. (x *. x)
  done;
  !s

let dist2 u v = sqrt (sq_dist2 u v)

let dist_inf u v =
  check_same_dim "dist_inf" u v;
  let m = ref 0. in
  for i = 0 to dim u - 1 do
    m :=
      Float.max !m
        (Float.abs (Array.unsafe_get u i -. Array.unsafe_get v i))
  done;
  !m

let dist1 u v =
  check_same_dim "dist1" u v;
  let s = ref 0. in
  for i = 0 to dim u - 1 do
    s := !s +. Float.abs (Array.unsafe_get u i -. Array.unsafe_get v i)
  done;
  !s

let dist_p p u v =
  if p < 1. then invalid_arg "Vec.norm_p: p must be >= 1";
  if p = 2. then dist2 u v
  else if p = 1. then dist1 u v
  else if p = Float.infinity then dist_inf u v
  else begin
    check_same_dim "dist_p" u v;
    let m = dist_inf u v in
    if m = 0. then 0.
    else begin
      let s = ref 0. in
      for i = 0 to dim u - 1 do
        s :=
          !s
          +. (Float.abs (Array.unsafe_get u i -. Array.unsafe_get v i) /. m)
             ** p
      done;
      m *. (!s ** (1. /. p))
    end
  end

let normalize v =
  let n = norm2 v in
  if n < 1e-300 then invalid_arg "Vec.normalize: zero vector";
  scale (1. /. n) v

let equal ?(eps = 1e-9) u v =
  dim u = dim v
  &&
  let ok = ref true in
  for i = 0 to dim u - 1 do
    if Float.abs (u.(i) -. v.(i)) > eps then ok := false
  done;
  !ok

let compare_lex u v =
  let c = compare (dim u) (dim v) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= dim u then 0
      else
        let c = Float.compare u.(i) v.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let pp ppf v =
  Format.fprintf ppf "(@[%a@])"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    v

let to_string v = Format.asprintf "%a" pp v
