type t = Random.State.t

let create seed = Random.State.make [| seed; 0x5bd1e995; seed lxor 0x27d4eb2f |]
let split t = Random.State.make [| Random.State.bits t; Random.State.bits t |]

(* splitmix64 finalizer: decorrelates consecutive (root, i) pairs so the
   per-index streams behave as independent generators. *)
let stream ~root i =
  let mix z =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
    logxor z (shift_right_logical z 31)
  in
  let h =
    mix
      (Int64.add
         (Int64.mul (Int64.of_int root) 0x9e3779b97f4a7c15L)
         (Int64.of_int i))
  in
  create (Int64.to_int h)
let float t bound = Random.State.float t bound
let uniform t ~lo ~hi = lo +. Random.State.float t (hi -. lo)
let int t bound = Random.State.int t bound
let bool t = Random.State.bool t

let gaussian t =
  let rec draw () =
    let u1 = Random.State.float t 1. in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = Random.State.float t 1. in
      sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)
  in
  draw ()

let point_box t ~dim ~lo ~hi = Vec.init dim (fun _ -> uniform t ~lo ~hi)

let point_sphere t ~dim ~radius =
  let rec draw () =
    let g = Vec.init dim (fun _ -> gaussian t) in
    let n = Vec.norm2 g in
    if n < 1e-12 then draw () else Vec.scale (radius /. n) g
  in
  draw ()

let point_ball t ~dim ~radius =
  let dir = point_sphere t ~dim ~radius:1. in
  let r = radius *. (Random.State.float t 1. ** (1. /. float_of_int dim)) in
  Vec.scale r dir

let cloud t ~n ~dim ~lo ~hi = List.init n (fun _ -> point_box t ~dim ~lo ~hi)

let simplex_vertices t ~dim =
  let rec draw attempts =
    if attempts > 1000 then
      failwith "Rng.simplex_vertices: could not sample a non-degenerate simplex";
    let pts = cloud t ~n:(dim + 1) ~dim ~lo:(-1.) ~hi:1. in
    (* Require a healthy margin of non-degeneracy so downstream geometry
       (inradius, dual basis) is well conditioned. *)
    let m = Matrix.of_rows (Affine.difference_vectors pts) in
    if Float.abs (Matrix.determinant m) > 1e-4 then pts else draw (attempts + 1)
  in
  draw 0

let shuffle t l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | l -> List.nth l (Random.State.int t (List.length l))
