(** Dense real matrices and the linear algebra the paper's constructions
    need: LU solves for the dual basis [B = (A^{-1})^T] (Section 9.1),
    rank / null-space for Radon partitions and affine-dependence tests,
    and Gram-Schmidt for distance-preserving projections (Theorem 8). *)

type t = { rows : int; cols : int; a : float array array }

val create : int -> int -> t
(** Zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val of_rows : Vec.t list -> t
val of_cols : Vec.t list -> t
val identity : int -> t
val copy : t -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val transpose : t -> t
val mul : t -> t -> t
val mul_vec : t -> Vec.t -> Vec.t

val mul_vec_into : Vec.t -> t -> Vec.t -> unit
(** [mul_vec_into dst m v] sets [dst := m v] without allocating; [dst]
    must have dimension [m.rows] and must not alias [v]. Bit-identical
    to [mul_vec]. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val equal : ?eps:float -> t -> t -> bool

val lu_decompose : t -> (t * int array * int) option
(** [lu_decompose m] is [Some (lu, perm, sign)] (Doolittle with partial
    pivoting, L and U packed in [lu]) or [None] if [m] is singular to
    working precision. [m] must be square. *)

val solve : t -> Vec.t -> Vec.t option
(** [solve a b] solves [a x = b] for square [a]; [None] if singular. *)

val inverse : t -> t option
val determinant : t -> float

val rank : ?eps:float -> t -> int
(** Numerical rank via Gaussian elimination with full row pivoting and
    threshold [eps] (default [1e-9], scaled by the largest entry). *)

val null_space : ?eps:float -> t -> Vec.t list
(** Basis (possibly empty) of the kernel of [m]: vectors [x] with
    [m x = 0]. Used to find Radon coefficients. *)

val gram_schmidt : ?eps:float -> Vec.t list -> Vec.t list
(** Orthonormal basis of the span of the input vectors; near-dependent
    vectors are dropped. *)

val pp : Format.formatter -> t -> unit
